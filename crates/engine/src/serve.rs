//! The serving layer: snapshot catalogs and a concurrent query server.
//!
//! Three pieces, stacked:
//!
//! * [`SnapshotCatalog`] — copy-on-write catalog versions. Readers take
//!   an [`Arc`] snapshot (one `RwLock` read + refcount bump, no
//!   relation data touched) and keep executing against it however long
//!   their query runs; writers clone the catalog *map* (relations are
//!   `Arc`-shared inside [`Catalog`], so this copies names, not data),
//!   mutate the clone, and install it atomically. Readers never block
//!   on an in-progress write and can never observe a torn catalog —
//!   every snapshot is some complete installed version.
//! * [`PlanCache`] (see [`crate::cache`]) — prepared statements shared
//!   across workers, keyed by (canonical text, schema).
//! * [`Server`] — N worker threads pulling [`Request`]s off one queue.
//!   Each query request resolves its plan through the cache and
//!   executes against the snapshot current *at dequeue time*; write
//!   requests install a new snapshot. A panic inside a request is
//!   caught ([`std::panic::catch_unwind`], the same isolation pattern
//!   as the morsel pool): the poisoned request answers
//!   [`ServeError::Panicked`] and the worker thread survives to serve
//!   the next request.
//!
//! **Write visibility:** requests are handled against the newest
//! snapshot at the moment a worker dequeues them, so a write's effect
//! is visible to every request whose execution starts after the
//! install completes — in particular, to anything submitted after the
//! write's [`Ticket`] resolves. In-flight queries keep the snapshot
//! they started with (snapshot isolation, not serializability).
//!
//! Per-request `ipdb-obs` counters (when metrics are enabled):
//! `serve.requests`, `serve.cache.hits`, `serve.cache.misses`,
//! `serve.snapshot.installs`.

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError, RwLock};
use std::thread;

use ipdb_rel::Schema;

use crate::backend::{Backend, Catalog};
use crate::cache::PlanCache;
use crate::error::EngineError;
use crate::morsel::ExecConfig;
use crate::pipeline::Engine;

/// The `ipdb-obs` counter of requests workers have started handling.
pub const OBS_REQUESTS: &str = "serve.requests";
/// The `ipdb-obs` counter of snapshot versions installed.
pub const OBS_SNAPSHOT_INSTALLS: &str = "serve.snapshot.installs";

// ---------------------------------------------------------------------
// Snapshot catalogs.
// ---------------------------------------------------------------------

/// One immutable installed catalog version: the catalog, its derived
/// [`Schema`] (computed once per install, not per request — it is the
/// plan-cache key), and a monotonic version number.
#[derive(Debug)]
pub struct Snapshot<B> {
    catalog: Catalog<B>,
    schema: Schema,
    version: u64,
}

impl<B> Snapshot<B> {
    /// The catalog as of this version.
    pub fn catalog(&self) -> &Catalog<B> {
        &self.catalog
    }

    /// The catalog's schema (relation name → arity), precomputed.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Monotonic version: 0 for the initial catalog, +1 per install.
    pub fn version(&self) -> u64 {
        self.version
    }
}

/// Copy-on-write catalog versions behind one `RwLock<Arc<_>>`: readers
/// clone the `Arc` out (and never block on a writer's clone+mutate
/// work, which happens *outside* that lock); writers are serialized
/// among themselves and swap complete versions in atomically.
#[derive(Debug)]
pub struct SnapshotCatalog<B> {
    current: RwLock<Arc<Snapshot<B>>>,
    /// Serializes read-modify-write updates so no install is lost; the
    /// `current` lock is only ever held for a pointer swap or clone.
    writer: Mutex<()>,
}

impl<B: Backend> SnapshotCatalog<B> {
    /// Starts the version history at `catalog` (version 0).
    pub fn new(catalog: Catalog<B>) -> SnapshotCatalog<B> {
        let schema = catalog.schema();
        SnapshotCatalog {
            current: RwLock::new(Arc::new(Snapshot {
                catalog,
                schema,
                version: 0,
            })),
            writer: Mutex::new(()),
        }
    }

    /// The current version — an O(1) `Arc` clone the caller can hold
    /// (and execute against) for as long as it likes.
    pub fn snapshot(&self) -> Arc<Snapshot<B>> {
        Arc::clone(&self.current.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Replaces the catalog wholesale with a new version; returns the
    /// installed version number.
    pub fn install(&self, catalog: Catalog<B>) -> u64 {
        let _w = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        self.swap_in(catalog)
    }

    /// Read-modify-write: clones the current catalog (shallow — the
    /// relations are `Arc`-shared), applies `f`, installs the result.
    /// Concurrent `update`s are serialized, so none is lost; readers
    /// are never blocked while `f` runs.
    pub fn update<F: FnOnce(&mut Catalog<B>)>(&self, f: F) -> u64 {
        let _w = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        let mut next = self.snapshot().catalog.clone();
        f(&mut next);
        self.swap_in(next)
    }

    /// The atomic tail of every write path; caller holds `writer`.
    fn swap_in(&self, catalog: Catalog<B>) -> u64 {
        let schema = catalog.schema();
        let mut cur = self.current.write().unwrap_or_else(PoisonError::into_inner);
        let version = cur.version + 1;
        *cur = Arc::new(Snapshot {
            catalog,
            schema,
            version,
        });
        drop(cur);
        if ipdb_obs::enabled() {
            ipdb_obs::incr(OBS_SNAPSHOT_INSTALLS);
        }
        version
    }
}

// ---------------------------------------------------------------------
// Requests, replies, errors.
// ---------------------------------------------------------------------

/// One unit of work for the server.
#[derive(Debug, Clone, PartialEq)]
pub enum Request<B> {
    /// Execute a query (surface syntax) against the current snapshot.
    Query(String),
    /// Install (or replace) one relation, producing a new snapshot.
    Install {
        /// Relation name to bind.
        name: String,
        /// The relation.
        rel: B,
    },
    /// Remove one relation, producing a new snapshot (a no-op install
    /// if the name was absent).
    Remove {
        /// Relation name to drop.
        name: String,
    },
    /// Replace the whole catalog in one snapshot install. This is the
    /// only way to move several relations *together* through the queue:
    /// a sequence of [`Request::Install`]s produces an intermediate
    /// snapshot per relation, all of them visible to readers.
    InstallAll(Catalog<B>),
    /// Panics inside the handler — test scaffolding that exists to
    /// prove panic isolation: the reply is [`ServeError::Panicked`] and
    /// the worker survives.
    Poison,
}

/// A successful server reply.
pub enum Reply<B: Backend> {
    /// The answer relation of a [`Request::Query`].
    Answer(B::Output),
    /// The snapshot version a write request installed.
    Installed {
        /// The new version number.
        version: u64,
    },
}

impl<B: Backend> fmt::Debug for Reply<B>
where
    B::Output: fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reply::Answer(out) => f.debug_tuple("Answer").field(out).finish(),
            Reply::Installed { version } => f
                .debug_struct("Installed")
                .field("version", version)
                .finish(),
        }
    }
}

/// How a request can fail without taking a worker down with it.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The engine rejected the request (parse, plan, or execution).
    Engine(EngineError),
    /// The request panicked; the payload message, best effort. The
    /// worker that caught it kept serving.
    Panicked(String),
    /// The server shut down before this request was answered.
    Closed,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Engine(e) => write!(f, "engine error: {e}"),
            ServeError::Panicked(msg) => write!(f, "request panicked: {msg}"),
            ServeError::Closed => write!(f, "server closed"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> ServeError {
        ServeError::Engine(e)
    }
}

/// A pending reply: blocks on [`Ticket::wait`] until a worker answers.
#[derive(Debug)]
pub struct Ticket<B: Backend> {
    rx: mpsc::Receiver<Result<Reply<B>, ServeError>>,
}

impl<B: Backend> Ticket<B> {
    /// Blocks until the request is answered. [`ServeError::Closed`] if
    /// the server shut down underneath it.
    pub fn wait(self) -> Result<Reply<B>, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Closed))
    }
}

// ---------------------------------------------------------------------
// The server.
// ---------------------------------------------------------------------

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads pulling from the queue (clamped to at least 1).
    pub threads: usize,
    /// [`PlanCache`] capacity in distinct statements.
    pub cache_capacity: usize,
    /// The engine used to prepare statements.
    pub engine: Engine,
    /// Per-request execution config. Defaults to
    /// [`ExecConfig::serial`]: a server's parallelism comes from its
    /// worker threads running *requests* concurrently, so each request
    /// executes serially instead of spawning a nested morsel pool.
    /// Raise it for servers handling few, large analytic queries.
    pub exec: ExecConfig,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            threads: thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            cache_capacity: 256,
            engine: Engine::new(),
            exec: ExecConfig::serial(),
        }
    }
}

impl ServerConfig {
    /// [`Default`], with an explicit worker count.
    pub fn with_threads(threads: usize) -> ServerConfig {
        ServerConfig {
            threads,
            ..ServerConfig::default()
        }
    }
}

struct Job<B: Backend> {
    req: Request<B>,
    tx: mpsc::Sender<Result<Reply<B>, ServeError>>,
}

struct Queue<B: Backend> {
    jobs: VecDeque<Job<B>>,
    open: bool,
}

struct Shared<B: Backend> {
    engine: Engine,
    cache: PlanCache,
    snapshots: SnapshotCatalog<B>,
    exec: ExecConfig,
    queue: Mutex<Queue<B>>,
    wake: Condvar,
}

impl<B> Shared<B>
where
    B: Backend + Send + Sync + 'static,
    B::Output: Send,
{
    fn handle(&self, req: Request<B>) -> Result<Reply<B>, ServeError> {
        match req {
            Request::Query(text) => {
                let snap = self.snapshots.snapshot();
                let stmt = self
                    .cache
                    .prepare_text(&self.engine, &text, snap.schema())?;
                Ok(Reply::Answer(
                    stmt.execute_catalog_cfg(snap.catalog(), &self.exec)?,
                ))
            }
            Request::Install { name, rel } => {
                let version = self.snapshots.update(|cat| {
                    cat.insert(name, rel);
                });
                Ok(Reply::Installed { version })
            }
            Request::Remove { name } => {
                let version = self.snapshots.update(|cat| {
                    cat.remove(&name);
                });
                Ok(Reply::Installed { version })
            }
            Request::InstallAll(catalog) => {
                let version = self.snapshots.install(catalog);
                Ok(Reply::Installed { version })
            }
            // ipdb-lint: allow(no-panic-on-serve-paths) reason="deliberate fault injection: this panic exists so tests can prove worker isolation; it is caught at the request boundary"
            Request::Poison => panic!("poisoned request (serve test scaffolding)"),
        }
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut q = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
                loop {
                    if let Some(job) = q.jobs.pop_front() {
                        break job;
                    }
                    if !q.open {
                        return;
                    }
                    q = self.wake.wait(q).unwrap_or_else(PoisonError::into_inner);
                }
            };
            if ipdb_obs::enabled() {
                ipdb_obs::incr(OBS_REQUESTS);
            }
            // Panic isolation (the morsel pool's catch-unwind pattern):
            // a poisoned request answers an error; the worker survives.
            let reply = match catch_unwind(AssertUnwindSafe(|| self.handle(job.req))) {
                Ok(reply) => reply,
                Err(payload) => Err(ServeError::Panicked(panic_message(payload))),
            };
            // The client may have dropped its ticket; that's fine.
            let _ = job.tx.send(reply);
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    // Deref through the box before downcasting — coercing `&payload`
    // would downcast the `Box` itself and always miss.
    let payload: &(dyn std::any::Any + Send) = &*payload;
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A concurrent query server over one backend type: N worker threads,
/// one job queue, a shared [`PlanCache`], and a [`SnapshotCatalog`]
/// holding the data. See the module docs for the consistency model.
///
/// Dropping the server shuts it down: the queue closes, workers drain
/// the remaining jobs and exit, and the drop blocks until they have
/// (call [`Server::shutdown`] to make that explicit).
pub struct Server<B>
where
    B: Backend + Send + Sync + 'static,
    B::Output: Send,
{
    shared: Arc<Shared<B>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl<B> Server<B>
where
    B: Backend + Send + Sync + 'static,
    B::Output: Send,
{
    /// Boots `config.threads` workers over an initial catalog.
    pub fn start(catalog: Catalog<B>, config: ServerConfig) -> Server<B> {
        let shared = Arc::new(Shared {
            engine: config.engine,
            cache: PlanCache::new(config.cache_capacity),
            snapshots: SnapshotCatalog::new(catalog),
            exec: config.exec,
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                open: true,
            }),
            wake: Condvar::new(),
        });
        let workers = (0..config.threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("ipdb-serve-{i}"))
                    .spawn(move || shared.worker_loop())
                    // ipdb-lint: allow(no-panic-on-serve-paths) reason="boot-time only: a host that cannot spawn its worker threads cannot serve, and failing loudly at start beats a server that accepts requests nobody answers"
                    .expect("spawn server worker")
            })
            .collect();
        Server { shared, workers }
    }

    /// Enqueues a request; returns immediately with a [`Ticket`] for
    /// the reply.
    pub fn submit(&self, req: Request<B>) -> Ticket<B> {
        let (tx, rx) = mpsc::channel();
        {
            let mut q = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if q.open {
                q.jobs.push_back(Job { req, tx });
            } else {
                let _ = tx.send(Err(ServeError::Closed));
            }
        }
        self.shared.wake.notify_one();
        Ticket { rx }
    }

    /// Submit a query and block for its answer.
    pub fn query(&self, text: impl Into<String>) -> Result<B::Output, ServeError> {
        match self.submit(Request::Query(text.into())).wait()? {
            Reply::Answer(out) => Ok(out),
            // ipdb-lint: allow(no-panic-on-serve-paths) reason="handle() pairs Query with Answer exhaustively; a mismatched reply is a bug in this file, not a runtime state"
            Reply::Installed { .. } => unreachable!("query requests answer with relations"),
        }
    }

    /// Submit a relation install and block for the new version.
    pub fn install(&self, name: impl Into<String>, rel: B) -> Result<u64, ServeError> {
        match self
            .submit(Request::Install {
                name: name.into(),
                rel,
            })
            .wait()?
        {
            Reply::Installed { version } => Ok(version),
            // ipdb-lint: allow(no-panic-on-serve-paths) reason="handle() pairs Install with Installed exhaustively; a mismatched reply is a bug in this file, not a runtime state"
            Reply::Answer(_) => unreachable!("write requests answer with versions"),
        }
    }

    /// Submit an atomic whole-catalog replacement and block for the new
    /// version. Unlike a sequence of [`Server::install`] calls, readers
    /// never observe a state mixing old and new relations.
    pub fn install_all(&self, catalog: Catalog<B>) -> Result<u64, ServeError> {
        match self.submit(Request::InstallAll(catalog)).wait()? {
            Reply::Installed { version } => Ok(version),
            // ipdb-lint: allow(no-panic-on-serve-paths) reason="handle() pairs InstallAll with Installed exhaustively; a mismatched reply is a bug in this file, not a runtime state"
            Reply::Answer(_) => unreachable!("write requests answer with versions"),
        }
    }

    /// The current snapshot (what a query submitted right now would
    /// execute against, absent queued writes).
    pub fn snapshot(&self) -> Arc<Snapshot<B>> {
        self.shared.snapshots.snapshot()
    }

    /// The shared plan cache (hit/miss counters live here).
    pub fn cache(&self) -> &PlanCache {
        &self.shared.cache
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Closes the queue, drains outstanding requests, and joins every
    /// worker. Requests submitted after this resolve to
    /// [`ServeError::Closed`].
    pub fn shutdown(mut self) {
        self.close_and_join();
    }

    fn close_and_join(&mut self) {
        {
            let mut q = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            q.open = false;
        }
        self.shared.wake.notify_all();
        for w in self.workers.drain(..) {
            // A worker that somehow died still counts as shut down.
            let _ = w.join();
        }
    }
}

impl<B> Drop for Server<B>
where
    B: Backend + Send + Sync + 'static,
    B::Output: Send,
{
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.close_and_join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipdb_rel::{instance, Instance};

    fn catalog() -> Catalog<Instance> {
        [
            ("R", instance![[1, 2], [3, 4]]),
            ("S", instance![[2, 9], [4, 7]]),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn snapshot_catalog_versions_and_cow() {
        let sc = SnapshotCatalog::new(catalog());
        let v0 = sc.snapshot();
        assert_eq!(v0.version(), 0);
        assert_eq!(v0.schema().arity_of("R"), Some(2));

        let v = sc.update(|cat| {
            cat.insert("T", instance![[5]]);
        });
        assert_eq!(v, 1);
        let v1 = sc.snapshot();
        assert_eq!(v1.version(), 1);
        assert!(v1.catalog().get("T").is_some());
        // The old snapshot is untouched (no torn catalogs) and shares
        // the unchanged relations with the new one (Arc, not copies).
        assert!(v0.catalog().get("T").is_none());
        assert!(Arc::ptr_eq(
            v0.catalog().get_shared("R").unwrap(),
            v1.catalog().get_shared("R").unwrap()
        ));

        let v = sc.install(catalog());
        assert_eq!(v, 2);
        assert!(sc.snapshot().catalog().get("T").is_none());
    }

    #[test]
    fn server_answers_queries_and_reuses_plans() {
        let srv: Server<Instance> = Server::start(catalog(), ServerConfig::with_threads(2));
        let q = "pi[0,3](join[#1=#2](R, S))";
        let expected = instance![[1, 9], [3, 7]];
        assert_eq!(srv.query(q).unwrap(), expected);
        assert_eq!(srv.query(q).unwrap(), expected);
        assert_eq!(srv.cache().hits(), 1);
        assert_eq!(srv.cache().misses(), 1);
        srv.shutdown();
    }

    #[test]
    fn writes_become_visible_to_later_requests() {
        let srv: Server<Instance> = Server::start(catalog(), ServerConfig::with_threads(2));
        assert_eq!(srv.query("R").unwrap(), instance![[1, 2], [3, 4]]);
        let version = srv.install("R", instance![[8, 8]]).unwrap();
        assert!(version >= 1);
        // The install's ticket resolved, so this query starts after the
        // new snapshot is in place.
        assert_eq!(srv.query("R").unwrap(), instance![[8, 8]]);
        // Schema changes flow through too (plan-cache keys on schema).
        srv.install("R", instance![[1], [2]]).unwrap();
        assert_eq!(srv.query("R").unwrap(), instance![[1], [2]]);
        srv.shutdown();
    }

    #[test]
    fn engine_errors_come_back_as_replies() {
        let srv: Server<Instance> = Server::start(catalog(), ServerConfig::with_threads(1));
        // Parse error.
        assert!(matches!(
            srv.query("pi[0"),
            Err(ServeError::Engine(EngineError::Parse { .. }))
        ));
        // Unknown relation.
        assert!(matches!(srv.query("Zap"), Err(ServeError::Engine(_))));
        // The worker is still alive and serving.
        assert_eq!(srv.query("pi[0](R)").unwrap(), instance![[1], [3]]);
        srv.shutdown();
    }

    #[test]
    fn panicked_requests_answer_errors_and_workers_survive() {
        let srv: Server<Instance> = Server::start(catalog(), ServerConfig::with_threads(1));
        match srv.submit(Request::Poison).wait() {
            Err(ServeError::Panicked(msg)) => assert!(msg.contains("poisoned request")),
            other => panic!("expected a panic reply, got {other:?}"),
        }
        // Same single worker, next request: it survived.
        assert_eq!(srv.query("pi[0](R)").unwrap(), instance![[1], [3]]);
        srv.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_work_and_closes() {
        let srv: Server<Instance> = Server::start(catalog(), ServerConfig::with_threads(1));
        let tickets: Vec<_> = (0..16)
            .map(|i| srv.submit(Request::Query(format!("sigma[#0!={i}](R)"))))
            .collect();
        srv.shutdown();
        for t in tickets {
            assert!(t.wait().is_ok(), "queued work drains before shutdown");
        }
    }

    #[test]
    fn server_config_default_is_sane() {
        let cfg = ServerConfig::default();
        assert!(cfg.threads >= 1);
        assert!(cfg.cache_capacity >= 1);
        assert!(cfg.engine.optimize);
        assert_eq!(ServerConfig::with_threads(3).threads, 3);
        // threads=0 is clamped at start.
        let srv: Server<Instance> = Server::start(catalog(), ServerConfig::with_threads(0));
        assert_eq!(srv.threads(), 1);
        srv.shutdown();
    }
}
