//! The logical plan IR: a [`Query`] tree with every node annotated by
//! its output arity.
//!
//! Arity annotations are what the optimizer's rewrites consume —
//! selection pushdown through a product must know the left operand's
//! width to split a predicate's conjuncts, and dead-branch elimination
//! must manufacture empty literals of the right arity. Building a
//! [`Plan`] performs the same validation as [`Query::arity`] /
//! [`Query::arity2`], so a plan is well-typed by construction.

use std::fmt;

use ipdb_rel::{Instance, Pred, Query, RelError, Schema};

use crate::error::EngineError;
use crate::parser::{is_relation_name, render_pred_string};

/// One node of a logical plan; mirrors [`Query`] with [`Plan`] children.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanNode {
    /// The input relation `V`.
    Input,
    /// The second input relation `W`.
    Second,
    /// A named relation of the prepared schema. Building a plan rejects
    /// names that are not surface-syntax identifiers (or that spell a
    /// reserved word) with [`EngineError::BadRelationName`], so a
    /// planned query always renders to re-parseable text.
    Rel(String),
    /// A constant relation.
    Lit(Instance),
    /// `π_cols`.
    Project(Vec<usize>, Box<Plan>),
    /// `σ_p`.
    Select(Pred, Box<Plan>),
    /// `×`.
    Product(Box<Plan>, Box<Plan>),
    /// `⋈` — hash equijoin, `σ_{⋀ #i=#j ∧ residual}(left × right)`
    /// executed by key hashing (see [`Query::Join`]).
    ///
    /// Stricter than the AST node: building a plan rejects an empty `on`
    /// list ([`EngineError::EmptyJoinOn`]) and key pairs that do not span
    /// the two operands ([`EngineError::JoinArity`]), and deduplicates
    /// repeated pairs — so a planned join always hash-executes on at
    /// least one spanning key.
    Join {
        /// Normalized key pairs: `(left col, right col)` in combined
        /// (global) column indexes, left component first, deduplicated.
        on: Vec<(usize, usize)>,
        /// Extra filter over the combined tuple, if any.
        residual: Option<Pred>,
        /// Left operand.
        left: Box<Plan>,
        /// Right operand.
        right: Box<Plan>,
    },
    /// `∪`.
    Union(Box<Plan>, Box<Plan>),
    /// `−`.
    Diff(Box<Plan>, Box<Plan>),
    /// `∩`.
    Intersect(Box<Plan>, Box<Plan>),
}

/// An arity-annotated logical plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plan {
    /// The operator at this node.
    pub node: PlanNode,
    /// Output arity of this subtree.
    pub arity: usize,
}

impl Plan {
    /// Builds (and arity-checks) a plan from a query in a single-input
    /// context.
    pub fn from_query(q: &Query, input_arity: usize) -> Result<Plan, EngineError> {
        Plan::build(q, &Schema::single(input_arity))
    }

    /// Builds a plan in a two-relation context (`V` and `W`).
    pub fn from_query2(
        q: &Query,
        input_arity: usize,
        second_arity: usize,
    ) -> Result<Plan, EngineError> {
        Plan::build(q, &Schema::pair(input_arity, second_arity))
    }

    /// Builds a plan over an arbitrary named [`Schema`]; `Input`/`Second`
    /// resolve as the reserved names `V`/`W`.
    pub fn from_query_schema(q: &Query, schema: &Schema) -> Result<Plan, EngineError> {
        Plan::build(q, schema)
    }

    fn build(q: &Query, schema: &Schema) -> Result<Plan, EngineError> {
        let plan = match q {
            Query::Input => Plan {
                node: PlanNode::Input,
                arity: schema.resolve(Schema::INPUT)?,
            },
            Query::Second => Plan {
                node: PlanNode::Second,
                arity: schema.resolve(Schema::SECOND)?,
            },
            Query::Rel(name) => {
                if !is_relation_name(name) {
                    return Err(EngineError::BadRelationName { name: name.clone() });
                }
                Plan {
                    arity: schema.resolve(name)?,
                    node: PlanNode::Rel(name.clone()),
                }
            }
            Query::Lit(i) => Plan {
                node: PlanNode::Lit(i.clone()),
                arity: i.arity(),
            },
            Query::Project(cols, q) => {
                let child = Plan::build(q, schema)?;
                for &c in cols {
                    if c >= child.arity {
                        return Err(RelError::ColumnOutOfRange {
                            col: c,
                            arity: child.arity,
                        }
                        .into());
                    }
                }
                Plan {
                    arity: cols.len(),
                    node: PlanNode::Project(cols.clone(), Box::new(child)),
                }
            }
            Query::Select(p, q) => {
                let child = Plan::build(q, schema)?;
                p.validate(child.arity)?;
                Plan {
                    arity: child.arity,
                    node: PlanNode::Select(p.clone(), Box::new(child)),
                }
            }
            Query::Product(a, b) => {
                let (a, b) = (Plan::build(a, schema)?, Plan::build(b, schema)?);
                Plan {
                    arity: a.arity + b.arity,
                    node: PlanNode::Product(Box::new(a), Box::new(b)),
                }
            }
            Query::Join {
                on,
                residual,
                left,
                right,
            } => {
                let (a, b) = (Plan::build(left, schema)?, Plan::build(right, schema)?);
                Plan::join(a, b, on, residual.clone())?
            }
            Query::Union(a, b) | Query::Diff(a, b) | Query::Intersect(a, b) => {
                let (a, b) = (Plan::build(a, schema)?, Plan::build(b, schema)?);
                if a.arity != b.arity {
                    return Err(RelError::ArityMismatch {
                        expected: a.arity,
                        got: b.arity,
                    }
                    .into());
                }
                let arity = a.arity;
                let node = match q {
                    Query::Union(..) => PlanNode::Union(Box::new(a), Box::new(b)),
                    Query::Diff(..) => PlanNode::Diff(Box::new(a), Box::new(b)),
                    _ => PlanNode::Intersect(Box::new(a), Box::new(b)),
                };
                Plan { node, arity }
            }
        };
        Ok(plan)
    }

    /// Builds a [`PlanNode::Join`] over two planned operands, enforcing
    /// the planner's join contract: at least one key pair
    /// ([`EngineError::EmptyJoinOn`]), every pair spanning the two
    /// operands ([`EngineError::JoinArity`]). Pairs are normalized to
    /// left-column-first and deduplicated, and the residual is
    /// arity-checked against the combined width.
    pub fn join(
        left: Plan,
        right: Plan,
        on: &[(usize, usize)],
        residual: Option<Pred>,
    ) -> Result<Plan, EngineError> {
        let (la, lb) = (left.arity, right.arity);
        let total = la + lb;
        if on.is_empty() {
            return Err(EngineError::EmptyJoinOn);
        }
        let mut norm: Vec<(usize, usize)> = Vec::new();
        for &(i, j) in on {
            let (lo, hi) = (i.min(j), i.max(j));
            // Spanning means lo addresses the left operand and hi the
            // right one; report the column that lands on the wrong side.
            if hi >= total || hi < la {
                return Err(EngineError::JoinArity {
                    col: hi,
                    left: la,
                    right: lb,
                });
            }
            if lo >= la {
                return Err(EngineError::JoinArity {
                    col: lo,
                    left: la,
                    right: lb,
                });
            }
            if !norm.contains(&(lo, hi)) {
                norm.push((lo, hi));
            }
        }
        if let Some(p) = &residual {
            p.validate(total)?;
        }
        Ok(Plan {
            arity: total,
            node: PlanNode::Join {
                on: norm,
                residual,
                left: Box::new(left),
                right: Box::new(right),
            },
        })
    }

    /// Lowers the plan back to a [`Query`] AST (the executable form).
    pub fn to_query(&self) -> Query {
        match &self.node {
            PlanNode::Input => Query::Input,
            PlanNode::Second => Query::Second,
            PlanNode::Rel(name) => Query::Rel(name.clone()),
            PlanNode::Lit(i) => Query::Lit(i.clone()),
            PlanNode::Project(cols, p) => Query::project(p.to_query(), cols.clone()),
            PlanNode::Select(pred, p) => Query::select(p.to_query(), pred.clone()),
            PlanNode::Product(a, b) => Query::product(a.to_query(), b.to_query()),
            PlanNode::Join {
                on,
                residual,
                left,
                right,
            } => Query::join(
                left.to_query(),
                right.to_query(),
                on.iter().copied(),
                residual.clone(),
            ),
            PlanNode::Union(a, b) => Query::union(a.to_query(), b.to_query()),
            PlanNode::Diff(a, b) => Query::diff(a.to_query(), b.to_query()),
            PlanNode::Intersect(a, b) => Query::intersect(a.to_query(), b.to_query()),
        }
    }

    /// Height of the plan tree (same measure as [`Query::depth`]).
    pub fn depth(&self) -> usize {
        match &self.node {
            PlanNode::Input | PlanNode::Second | PlanNode::Rel(_) | PlanNode::Lit(_) => 1,
            PlanNode::Project(_, p) | PlanNode::Select(_, p) => 1 + p.depth(),
            PlanNode::Product(a, b)
            | PlanNode::Union(a, b)
            | PlanNode::Diff(a, b)
            | PlanNode::Intersect(a, b) => 1 + a.depth().max(b.depth()),
            PlanNode::Join { left, right, .. } => 1 + left.depth().max(right.depth()),
        }
    }

    /// Whether this node is a constant empty relation.
    pub fn is_empty_lit(&self) -> bool {
        matches!(&self.node, PlanNode::Lit(i) if i.is_empty())
    }

    /// An empty-relation plan of the given arity (dead branches rewrite
    /// to this).
    pub fn empty(arity: usize) -> Plan {
        Plan {
            node: PlanNode::Lit(Instance::empty(arity)),
            arity,
        }
    }

    /// Renders the plan as an indented operator tree with per-node arity
    /// annotations — the body of `explain()`.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        self.render_into(0, &mut out);
        out
    }

    fn render_into(&self, indent: usize, out: &mut String) {
        use std::fmt::Write as _;
        for _ in 0..indent {
            out.push_str("  ");
        }
        let _ = match &self.node {
            PlanNode::Input => writeln!(out, "V  (arity {})", self.arity),
            PlanNode::Second => writeln!(out, "W  (arity {})", self.arity),
            PlanNode::Rel(name) => writeln!(out, "{name}  (arity {})", self.arity),
            PlanNode::Lit(i) => {
                writeln!(out, "lit {i}  (arity {}, {} rows)", self.arity, i.len())
            }
            PlanNode::Project(cols, _) => {
                writeln!(out, "pi{cols:?}  (arity {})", self.arity)
            }
            PlanNode::Select(p, _) => {
                writeln!(
                    out,
                    "sigma[{}]  (arity {})",
                    render_pred_string(p),
                    self.arity
                )
            }
            PlanNode::Product(..) => writeln!(out, "x  (arity {})", self.arity),
            PlanNode::Join { on, residual, .. } => {
                let keys = on
                    .iter()
                    .map(|(i, j)| format!("#{i}=#{j}"))
                    .collect::<Vec<_>>()
                    .join(",");
                match residual {
                    Some(p) => writeln!(
                        out,
                        "join[{keys}; {}]  (arity {})",
                        render_pred_string(p),
                        self.arity
                    ),
                    None => writeln!(out, "join[{keys}]  (arity {})", self.arity),
                }
            }
            PlanNode::Union(..) => writeln!(out, "union  (arity {})", self.arity),
            PlanNode::Diff(..) => writeln!(out, "diff  (arity {})", self.arity),
            PlanNode::Intersect(..) => writeln!(out, "intersect  (arity {})", self.arity),
        };
        match &self.node {
            PlanNode::Input | PlanNode::Second | PlanNode::Rel(_) | PlanNode::Lit(_) => {}
            PlanNode::Project(_, p) | PlanNode::Select(_, p) => p.render_into(indent + 1, out),
            PlanNode::Product(a, b)
            | PlanNode::Union(a, b)
            | PlanNode::Diff(a, b)
            | PlanNode::Intersect(a, b) => {
                a.render_into(indent + 1, out);
                b.render_into(indent + 1, out);
            }
            PlanNode::Join { left, right, .. } => {
                left.render_into(indent + 1, out);
                right.render_into(indent + 1, out);
            }
        }
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_tree())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipdb_rel::instance;

    fn sample() -> Query {
        Query::project(
            Query::select(
                Query::product(Query::Input, Query::Lit(instance![[1], [2]])),
                Pred::eq_cols(0, 2),
            ),
            vec![0, 1],
        )
    }

    #[test]
    fn annotates_arities_and_lowers_back() {
        let q = sample();
        let plan = Plan::from_query(&q, 2).unwrap();
        assert_eq!(plan.arity, 2);
        match &plan.node {
            PlanNode::Project(_, sel) => {
                assert_eq!(sel.arity, 3);
                match &sel.node {
                    PlanNode::Select(_, prod) => assert_eq!(prod.arity, 3),
                    other => panic!("expected select, got {other:?}"),
                }
            }
            other => panic!("expected project, got {other:?}"),
        }
        assert_eq!(plan.to_query(), q);
        assert_eq!(plan.depth(), q.depth());
    }

    #[test]
    fn rejects_ill_typed_queries() {
        let bad = Query::project(Query::Input, vec![5]);
        assert_eq!(
            Plan::from_query(&bad, 2),
            Err(EngineError::Rel(RelError::ColumnOutOfRange {
                col: 5,
                arity: 2
            }))
        );
        let mix = Query::union(Query::Input, Query::Lit(instance![[1]]));
        assert!(Plan::from_query(&mix, 2).is_err());
        assert!(Plan::from_query(&Query::Second, 2).is_err());
        assert_eq!(Plan::from_query2(&Query::Second, 2, 4).unwrap().arity, 4);
        let sel = Query::select(Query::Input, Pred::eq_cols(0, 7));
        assert!(Plan::from_query(&sel, 2).is_err());
    }

    #[test]
    fn explain_tree_shows_arities() {
        let plan = Plan::from_query(&sample(), 2).unwrap();
        let tree = plan.render_tree();
        assert!(tree.contains("pi[0, 1]  (arity 2)"));
        assert!(tree.contains("sigma[#0=#2]  (arity 3)"));
        assert!(tree.contains("x  (arity 3)"));
        assert!(tree.contains("V  (arity 2)"));
        assert!(tree.contains("(arity 1, 2 rows)"));
        assert_eq!(plan.to_string(), tree);
    }

    #[test]
    fn join_plans_validate_normalize_and_roundtrip() {
        // Reversed and duplicated pairs normalize to one (left, right) key.
        let q = Query::join(Query::Input, Query::Input, [(2, 0), (0, 2)], None);
        let plan = Plan::from_query(&q, 2).unwrap();
        assert_eq!(plan.arity, 4);
        match &plan.node {
            PlanNode::Join { on, residual, .. } => {
                assert_eq!(on, &vec![(0, 2)]);
                assert!(residual.is_none());
            }
            other => panic!("expected join, got {other:?}"),
        }
        // Lowering keeps the normalized pairs.
        assert_eq!(
            plan.to_query(),
            Query::join(Query::Input, Query::Input, [(0, 2)], None)
        );
        assert_eq!(plan.depth(), 2);

        // Empty `on` is rejected at plan build.
        let empty = Query::join(Query::Input, Query::Input, [], None);
        assert_eq!(Plan::from_query(&empty, 2), Err(EngineError::EmptyJoinOn));

        // Key out of the combined arity.
        let oob = Query::join(Query::Input, Query::Input, [(0, 9)], None);
        assert_eq!(
            Plan::from_query(&oob, 2),
            Err(EngineError::JoinArity {
                col: 9,
                left: 2,
                right: 2
            })
        );
        // Both key columns on the left side.
        let left_only = Query::join(Query::Input, Query::Input, [(0, 1)], None);
        assert_eq!(
            Plan::from_query(&left_only, 2),
            Err(EngineError::JoinArity {
                col: 1,
                left: 2,
                right: 2
            })
        );
        // Both key columns on the right side.
        let right_only = Query::join(Query::Input, Query::Input, [(2, 3)], None);
        assert_eq!(
            Plan::from_query(&right_only, 2),
            Err(EngineError::JoinArity {
                col: 2,
                left: 2,
                right: 2
            })
        );
        // Residual is arity-checked against the combined width.
        let bad_resid = Query::join(
            Query::Input,
            Query::Input,
            [(0, 2)],
            Some(Pred::eq_cols(0, 7)),
        );
        assert!(Plan::from_query(&bad_resid, 2).is_err());
    }

    #[test]
    fn join_renders_in_explain_tree() {
        let q = Query::join(
            Query::Input,
            Query::Input,
            [(1, 2)],
            Some(Pred::neq_const(0, 3)),
        );
        let plan = Plan::from_query(&q, 2).unwrap();
        let tree = plan.render_tree();
        assert!(
            tree.contains("join[#1=#2; #0!=3]  (arity 4)"),
            "got:\n{tree}"
        );
        let bare = Plan::from_query(
            &Query::join(Query::Input, Query::Input, [(0, 2), (1, 3)], None),
            2,
        )
        .unwrap();
        assert!(bare.render_tree().contains("join[#0=#2,#1=#3]  (arity 4)"));
    }

    #[test]
    fn empty_lit_helpers() {
        assert!(Plan::empty(3).is_empty_lit());
        assert_eq!(Plan::empty(3).arity, 3);
        let nonempty = Plan::from_query(&Query::Lit(instance![[1]]), 1).unwrap();
        assert!(!nonempty.is_empty_lit());
    }
}
