//! Morsel-driven parallel execution for the [`Instance`] backend.
//!
//! The engine evaluates instance queries over `ipdb-rel`'s columnar
//! batches ([`ColumnarInstance`]) and parallelizes the data-intensive
//! kernels morsel-wise (Leis et al.'s morsel-driven model, scoped to
//! `std::thread` — no crates.io dependencies):
//!
//! * the probe side of a hash join, the predicate masks of selections
//!   and join residuals, and the final row materialization are split
//!   into fixed-size row ranges (*morsels*, [`ExecConfig::morsel_rows`]);
//! * the calling thread plus a process-wide pool of persistent workers
//!   (spawned once, parked between stages — thread creation is far too
//!   slow on some hosts to pay per stage) pull morsels from a shared
//!   atomic counter, so scheduling is dynamic but each morsel's output
//!   depends only on its input rows;
//! * per-morsel outputs are merged back **in morsel order** and the
//!   final result is an [`Instance`] — a canonical `BTreeSet` — so the
//!   answer is *bit-identical for every thread count and morsel size*.
//!   Determinism is structural, not incidental: kernels never branch on
//!   scheduling, and set semantics make the merge order-insensitive
//!   anyway.
//!
//! The worker count comes from [`ExecConfig::from_env`]:
//! `IPDB_THREADS` if set (a positive integer), otherwise
//! [`std::thread::available_parallelism`]. `IPDB_THREADS=1` forces
//! serial execution (CI runs the tier-1 suite both ways).
//!
//! Set operations (`∪`, `−`, `∩`) and leaf lookups convert through row
//! form — they are cheap relative to the join/select kernels and their
//! `BTreeSet` implementations are already canonical.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

use ipdb_rel::{
    ColumnarInstance, Instance, JoinIndex, Pred, Query, RelError, Schema, Tuple, Value,
};

use crate::error::EngineError;
use crate::report::{query_label, OpReport};

/// Default morsel size (rows per scheduling unit).
pub const DEFAULT_MORSEL_ROWS: usize = 1024;

/// Execution knobs for the morsel-parallel instance executor.
///
/// Results are identical for every configuration (see the module docs);
/// the knobs trade scheduling overhead against parallelism.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecConfig {
    /// Worker count for morsel fan-out; `1` means fully serial.
    pub threads: usize,
    /// Rows per morsel (clamped to at least 1).
    pub morsel_rows: usize,
    /// Record per-stage/per-worker metrics into the [`ipdb_obs`]
    /// registry. Constructors default this to the global
    /// [`ipdb_obs::enabled`] flag (`IPDB_METRICS`); flip it per config
    /// to instrument one run without touching the process flag.
    pub metrics: bool,
}

impl ExecConfig {
    /// Serial execution (one worker, default morsel size).
    pub fn serial() -> ExecConfig {
        ExecConfig {
            threads: 1,
            morsel_rows: DEFAULT_MORSEL_ROWS,
            metrics: ipdb_obs::enabled(),
        }
    }

    /// `threads` workers with the default morsel size.
    pub fn with_threads(threads: usize) -> ExecConfig {
        ExecConfig {
            threads: threads.max(1),
            morsel_rows: DEFAULT_MORSEL_ROWS,
            metrics: ipdb_obs::enabled(),
        }
    }

    /// The environment-driven default: `IPDB_THREADS` if set to a
    /// positive integer, otherwise [`std::thread::available_parallelism`].
    ///
    /// A set-but-unusable `IPDB_THREADS` (empty, `0`, non-numeric, or
    /// overflowing `usize`) is **not** silently ignored: it falls back
    /// to the detected parallelism and prints one `ipdb: warning:` line
    /// to stderr, once per process. Values above the executor's worker
    /// clamp (64) are accepted as-is — `run_morsels` clamps them.
    pub fn from_env() -> ExecConfig {
        let raw = std::env::var("IPDB_THREADS").ok();
        let (parsed, warning) = parse_threads_env(raw.as_deref());
        if let Some(w) = warning {
            static WARN_ONCE: std::sync::Once = std::sync::Once::new();
            WARN_ONCE.call_once(|| eprintln!("ipdb: warning: {w}"));
        }
        let threads = parsed.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
        ExecConfig::with_threads(threads)
    }
}

/// The `IPDB_THREADS` parser behind [`ExecConfig::from_env`], split out
/// so the fallback policy is unit-testable without touching the process
/// environment: `(thread count if usable, warning if the value was set
/// but unusable)`. An unset variable is not an error — `(None, None)`.
fn parse_threads_env(raw: Option<&str>) -> (Option<usize>, Option<String>) {
    let Some(raw) = raw else {
        return (None, None);
    };
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return (
            None,
            Some("IPDB_THREADS is set but empty; using detected parallelism".to_string()),
        );
    }
    match trimmed.parse::<usize>() {
        Ok(0) => (
            None,
            Some(
                "IPDB_THREADS=0 is invalid (need a positive integer); \
                 using detected parallelism"
                    .to_string(),
            ),
        ),
        Ok(t) => (Some(t), None),
        Err(_) => (
            None,
            Some(format!(
                "IPDB_THREADS={trimmed:?} is not a positive integer; \
                 using detected parallelism"
            )),
        ),
    }
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig::from_env()
    }
}

/// Runs `f(lo, hi)` over every morsel of `0..rows` and returns the
/// outputs in morsel order. Serial when one worker (or one morsel)
/// suffices; otherwise the calling thread and up to `threads - 1` pool
/// workers pull morsel indexes from a shared atomic counter. The pool,
/// the completion latch, and the lifetime erasure that lets borrowed
/// closures run on `'static` workers all live in [`crate::erase`] —
/// this module stays unsafe-free.
fn run_morsels<T, F>(rows: usize, cfg: &ExecConfig, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
{
    let morsel = cfg.morsel_rows.max(1);
    let n_morsels = rows.div_ceil(morsel);
    let span = |k: usize| (k * morsel, ((k + 1) * morsel).min(rows));
    // Hard worker clamp: more fan-out than morsels is useless, and the
    // pool should stay a bounded resource however `IPDB_THREADS` is set.
    let threads = cfg.threads.max(1).min(n_morsels.max(1)).min(64);
    // Metrics are recorded once per stage / per participating thread —
    // never per morsel, and never at all when `cfg.metrics` is off —
    // which is what keeps the metrics-off overhead unmeasurable.
    if cfg.metrics {
        ipdb_obs::incr("exec.stages");
        ipdb_obs::add("exec.morsels", n_morsels as u64);
    }
    if threads <= 1 || n_morsels <= 1 {
        return (0..n_morsels)
            .map(|k| {
                let (lo, hi) = span(k);
                f(lo, hi)
            })
            .collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n_morsels).map(|_| None).collect());
    // The calling thread and every pool worker run the same drain loop;
    // results land keyed by morsel index, so the merge is deterministic
    // regardless of which thread claimed what.
    let drive = || {
        let mut local: Vec<(usize, T)> = Vec::new();
        loop {
            // ORDERING: Relaxed suffices — the counter's only job is to
            // hand out each morsel index exactly once, which the atomic
            // RMW guarantees under any ordering; every morsel *result*
            // is published through the `slots` mutex below, which
            // provides the happens-before edge to the reading thread.
            let k = next.fetch_add(1, Ordering::Relaxed);
            if k >= n_morsels {
                break;
            }
            let (lo, hi) = span(k);
            local.push((k, f(lo, hi)));
        }
        // One registry touch per participating thread per stage: how
        // many morsels this worker drained, keyed by its thread name
        // (the calling thread reports as "caller").
        if cfg.metrics && !local.is_empty() {
            let who = std::thread::current();
            let name = who.name().unwrap_or("caller");
            ipdb_obs::add(&format!("pool.drained.{name}"), local.len() as u64);
        }
        // Poison recovery: a panic in `f` never leaves this mutex held
        // mid-write (slots are filled one whole `Some` at a time), so
        // the map is sound for whichever thread locks it next.
        let mut slots = slots.lock().unwrap_or_else(PoisonError::into_inner);
        for (k, out) in local {
            slots[k] = Some(out);
        }
    };
    crate::erase::fan_out(threads - 1, &drive);
    slots
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .into_iter()
        // ipdb-lint: allow(no-panic-on-serve-paths) reason="fan_out returns normally only after every invocation completed, and the drain loop claims every index below n_morsels before stopping"
        .map(|t| t.expect("every morsel index was claimed exactly once"))
        .collect()
}

/// Parallel `σ_p`: the mask is evaluated morsel-wise, then the kept row
/// ids (already in ascending order) become one selection vector.
fn par_select(
    ci: &ColumnarInstance,
    p: &Pred,
    cfg: &ExecConfig,
) -> Result<ColumnarInstance, RelError> {
    p.validate(ci.arity())?;
    let chunks = run_morsels(ci.len(), cfg, |lo, hi| {
        ci.eval_mask_range(p, lo, hi)
            // ipdb-lint: allow(no-panic-on-serve-paths) reason="p.validate(ci.arity()) ran at fn entry; eval_mask_range only fails on arity/column errors that validation rules out"
            .expect("predicate validated above")
            .into_iter()
            .enumerate()
            .filter_map(|(k, keep)| keep.then_some(lo + k))
            .collect::<Vec<usize>>()
    });
    let keep: Vec<usize> = chunks.into_iter().flatten().collect();
    Ok(ci.gather_rows(&keep))
}

/// Parallel hash equijoin: serial build on the smaller side, morsel-
/// parallel probe, serial gather, parallel residual mask. Key
/// normalization is the shared [`ipdb_rel::normalize_join_keys`], so
/// this can never classify keys differently from the row path.
fn par_join(
    left: &ColumnarInstance,
    right: &ColumnarInstance,
    on: &[(usize, usize)],
    residual: Option<&Pred>,
    cfg: &ExecConfig,
) -> Result<ColumnarInstance, RelError> {
    par_join_impl(left, right, on, residual, cfg).map(|(out, _)| out)
}

/// [`par_join`] plus the build-side choice for `EXPLAIN ANALYZE`:
/// `Some(build_left)` on the hash path, `None` when empty keys degrade
/// the join to product + filter.
fn par_join_impl(
    left: &ColumnarInstance,
    right: &ColumnarInstance,
    on: &[(usize, usize)],
    residual: Option<&Pred>,
    cfg: &ExecConfig,
) -> Result<(ColumnarInstance, Option<bool>), RelError> {
    let total = left.arity() + right.arity();
    let (keys, extra) = ipdb_rel::normalize_join_keys(on, left.arity(), total)?;
    if let Some(p) = residual {
        p.validate(total)?;
    }
    let filter = Pred::conj_all(extra.into_iter().chain(residual.cloned()));
    if keys.is_empty() {
        let prod = left.product(right);
        return if filter == Pred::True {
            Ok((prod, None))
        } else {
            par_select(&prod, &filter, cfg).map(|out| (out, None))
        };
    }
    let build_left = left.len() <= right.len();
    let (build, probe) = if build_left {
        (left, right)
    } else {
        (right, left)
    };
    let (build_cols, probe_cols): (Vec<usize>, Vec<usize>) = if build_left {
        keys.iter().copied().unzip()
    } else {
        keys.iter().map(|&(i, j)| (j, i)).unzip()
    };
    let index = JoinIndex::build(build, build_cols);
    // Each morsel probes AND gathers its own output batch, so the value
    // copies of the join result happen in parallel; the batches then
    // stack by moving column storage (`vstack`), preserving morsel
    // order.
    let batches = run_morsels(probe.len(), cfg, |lo, hi| {
        let mut pairs = Vec::new();
        index.probe_range(build, probe, &probe_cols, lo, hi, &mut pairs);
        if !build_left {
            for p in &mut pairs {
                *p = (p.1, p.0);
            }
        }
        ColumnarInstance::concat_pairs(left, right, &pairs)
    });
    let joined = ColumnarInstance::vstack(total, batches)?;
    let out = if filter == Pred::True {
        joined
    } else {
        par_select(&joined, &filter, cfg)?
    };
    Ok((out, Some(build_left)))
}

/// Parallel row→column conversion for leaf relations: the tuple
/// pointers are collected serially (cheap), the value clones — the
/// expensive part of a scan — happen morsel-wise, and the per-morsel
/// batches stack by moving their columns.
fn from_rows_par(i: &Instance, cfg: &ExecConfig) -> ColumnarInstance {
    let arity = i.arity();
    let tuples: Vec<&Tuple> = i.iter().collect();
    let batches = run_morsels(tuples.len(), cfg, |lo, hi| {
        let mut cols: Vec<Vec<Value>> = (0..arity).map(|_| Vec::with_capacity(hi - lo)).collect();
        for t in &tuples[lo..hi] {
            for (c, v) in t.values().iter().enumerate() {
                cols[c].push(v.clone());
            }
        }
        // ipdb-lint: allow(no-panic-on-serve-paths) reason="the loop above pushes exactly hi-lo values onto each of the arity columns"
        ColumnarInstance::from_columns(cols, hi - lo).expect("columns match the chunk length")
    });
    // ipdb-lint: allow(no-panic-on-serve-paths) reason="every batch was built from tuples of one Instance, whose arity is fixed"
    ColumnarInstance::vstack(arity, batches).expect("chunks share the relation's arity")
}

/// Parallel row materialization: each morsel builds and *sorts* its
/// tuples, then the chunks feed the bulk set constructor — whose stable
/// sort merges the presorted runs cheaply — giving the canonical
/// `BTreeSet` (set semantics make chunking invisible in the result).
fn to_rows_par(ci: &ColumnarInstance, cfg: &ExecConfig) -> Instance {
    let chunks = run_morsels(ci.len(), cfg, |lo, hi| {
        let mut tuples: Vec<Tuple> = (lo..hi).map(|r| ci.tuple_at(r)).collect();
        tuples.sort_unstable();
        tuples
    });
    let total = chunks.iter().map(Vec::len).sum();
    let mut all: Vec<Tuple> = Vec::with_capacity(total);
    for c in chunks {
        all.extend(c);
    }
    // ipdb-lint: allow(no-panic-on-serve-paths) reason="every tuple came from ci.tuple_at, so its arity is ci.arity() by construction"
    Instance::from_tuple_batch(ci.arity(), all).expect("columnar rows share the batch arity")
}

/// The columnar/morsel evaluator over a name-lookup context; mirrors
/// `Query::eval`'s structure (and errors) operator by operator.
fn eval_columnar<'a, F>(
    lookup: &F,
    q: &Query,
    cfg: &ExecConfig,
) -> Result<ColumnarInstance, RelError>
where
    F: Fn(&str) -> Result<&'a Instance, RelError>,
{
    match q {
        Query::Input => Ok(from_rows_par(lookup(Schema::INPUT)?, cfg)),
        Query::Second => Ok(from_rows_par(lookup(Schema::SECOND)?, cfg)),
        Query::Rel(name) => Ok(from_rows_par(lookup(name)?, cfg)),
        Query::Lit(i) => Ok(ColumnarInstance::from_rows(i)),
        Query::Project(cols, q) => eval_columnar(lookup, q, cfg)?.project(cols),
        Query::Select(p, q) => par_select(&eval_columnar(lookup, q, cfg)?, p, cfg),
        Query::Product(a, b) => {
            Ok(eval_columnar(lookup, a, cfg)?.product(&eval_columnar(lookup, b, cfg)?))
        }
        Query::Join {
            on,
            residual,
            left,
            right,
        } => par_join(
            &eval_columnar(lookup, left, cfg)?,
            &eval_columnar(lookup, right, cfg)?,
            on,
            residual.as_ref(),
            cfg,
        ),
        // Set operations go through canonical row form; their BTreeSet
        // implementations are the deterministic merge.
        Query::Union(a, b) => {
            let a = to_rows_par(&eval_columnar(lookup, a, cfg)?, cfg);
            let b = to_rows_par(&eval_columnar(lookup, b, cfg)?, cfg);
            Ok(ColumnarInstance::from_rows(&a.union(&b)?))
        }
        Query::Diff(a, b) => {
            let a = to_rows_par(&eval_columnar(lookup, a, cfg)?, cfg);
            let b = to_rows_par(&eval_columnar(lookup, b, cfg)?, cfg);
            Ok(ColumnarInstance::from_rows(&a.difference(&b)?))
        }
        Query::Intersect(a, b) => {
            let a = to_rows_par(&eval_columnar(lookup, a, cfg)?, cfg);
            let b = to_rows_par(&eval_columnar(lookup, b, cfg)?, cfg);
            Ok(ColumnarInstance::from_rows(&a.intersect(&b)?))
        }
    }
}

/// [`eval_columnar`] with per-operator tracing: same evaluation, same
/// errors, but every node additionally reports cardinalities, the hash
/// join's build side, and **inclusive** wall-clock time (each node's
/// clock starts before its children evaluate, so the tree-wide sum of
/// exclusive times equals the root's inclusive time by construction).
/// The tracing cost is one `Instant` read pair and one small allocation
/// per *operator* — never per row — so the traced path is safe to use
/// on large inputs; the untraced twin exists so plain `execute` pays
/// nothing at all.
fn eval_columnar_traced<'a, F>(
    lookup: &F,
    q: &Query,
    cfg: &ExecConfig,
) -> Result<(ColumnarInstance, OpReport), RelError>
where
    F: Fn(&str) -> Result<&'a Instance, RelError>,
{
    let t0 = std::time::Instant::now();
    let mut build_left = None;
    let (out, children) = match q {
        Query::Input => (from_rows_par(lookup(Schema::INPUT)?, cfg), Vec::new()),
        Query::Second => (from_rows_par(lookup(Schema::SECOND)?, cfg), Vec::new()),
        Query::Rel(name) => (from_rows_par(lookup(name)?, cfg), Vec::new()),
        Query::Lit(i) => (ColumnarInstance::from_rows(i), Vec::new()),
        Query::Project(cols, q) => {
            let (c, r) = eval_columnar_traced(lookup, q, cfg)?;
            (c.project(cols)?, vec![r])
        }
        Query::Select(p, q) => {
            let (c, r) = eval_columnar_traced(lookup, q, cfg)?;
            (par_select(&c, p, cfg)?, vec![r])
        }
        Query::Product(a, b) => {
            let (ca, ra) = eval_columnar_traced(lookup, a, cfg)?;
            let (cb, rb) = eval_columnar_traced(lookup, b, cfg)?;
            (ca.product(&cb), vec![ra, rb])
        }
        Query::Join {
            on,
            residual,
            left,
            right,
        } => {
            let (cl, rl) = eval_columnar_traced(lookup, left, cfg)?;
            let (cr, rr) = eval_columnar_traced(lookup, right, cfg)?;
            let (joined, bl) = par_join_impl(&cl, &cr, on, residual.as_ref(), cfg)?;
            build_left = bl;
            (joined, vec![rl, rr])
        }
        Query::Union(a, b) => {
            let (ca, ra) = eval_columnar_traced(lookup, a, cfg)?;
            let (cb, rb) = eval_columnar_traced(lookup, b, cfg)?;
            let a = to_rows_par(&ca, cfg);
            let b = to_rows_par(&cb, cfg);
            (ColumnarInstance::from_rows(&a.union(&b)?), vec![ra, rb])
        }
        Query::Diff(a, b) => {
            let (ca, ra) = eval_columnar_traced(lookup, a, cfg)?;
            let (cb, rb) = eval_columnar_traced(lookup, b, cfg)?;
            let a = to_rows_par(&ca, cfg);
            let b = to_rows_par(&cb, cfg);
            (
                ColumnarInstance::from_rows(&a.difference(&b)?),
                vec![ra, rb],
            )
        }
        Query::Intersect(a, b) => {
            let (ca, ra) = eval_columnar_traced(lookup, a, cfg)?;
            let (cb, rb) = eval_columnar_traced(lookup, b, cfg)?;
            let a = to_rows_par(&ca, cfg);
            let b = to_rows_par(&cb, cfg);
            (ColumnarInstance::from_rows(&a.intersect(&b)?), vec![ra, rb])
        }
    };
    let rows_out = out.len() as u64;
    let rows_in = if children.is_empty() {
        rows_out
    } else {
        children.iter().map(|c| c.rows_out).sum()
    };
    let report = OpReport {
        label: query_label(q),
        arity: out.arity(),
        rows_in,
        rows_out,
        rows_pruned: 0,
        ns: u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
        build_left,
        children,
    };
    Ok((out, report))
}

/// Runs `q` against a single input relation (`V`) with an explicit
/// configuration — the entry point the `Instance` backend uses (with
/// [`ExecConfig::from_env`]) and the determinism oracles sweep.
pub fn run_instance(
    input: &Instance,
    q: &Query,
    cfg: &ExecConfig,
) -> Result<Instance, EngineError> {
    let lookup = |name: &str| -> Result<&Instance, RelError> {
        if name == Schema::INPUT {
            Ok(input)
        } else {
            Err(RelError::missing_relation(name))
        }
    };
    Ok(to_rows_par(&eval_columnar(&lookup, q, cfg)?, cfg))
}

/// Runs `q` against a named map of relations (`Input`/`Second` resolve
/// as the reserved names `V`/`W`, exactly like `Query::eval_catalog`).
/// Generic over the map's value so both plain `Instance` maps and the
/// `Arc<Instance>` maps inside a [`crate::Catalog`] execute without
/// copying a relation.
pub fn run_instance_map<R: std::borrow::Borrow<Instance>>(
    rels: &BTreeMap<String, R>,
    q: &Query,
    cfg: &ExecConfig,
) -> Result<Instance, EngineError> {
    let lookup = |name: &str| -> Result<&Instance, RelError> {
        rels.get(name)
            .map(std::borrow::Borrow::borrow)
            .ok_or_else(|| RelError::missing_relation(name))
    };
    Ok(to_rows_par(&eval_columnar(&lookup, q, cfg)?, cfg))
}

/// [`run_instance`] with per-operator tracing — the `EXPLAIN ANALYZE`
/// entry point for the single-relation case. The returned instance is
/// identical to `run_instance`'s for every configuration.
pub fn run_instance_traced(
    input: &Instance,
    q: &Query,
    cfg: &ExecConfig,
) -> Result<(Instance, OpReport), EngineError> {
    let lookup = |name: &str| -> Result<&Instance, RelError> {
        if name == Schema::INPUT {
            Ok(input)
        } else {
            Err(RelError::missing_relation(name))
        }
    };
    let (ci, report) = eval_columnar_traced(&lookup, q, cfg)?;
    Ok((to_rows_par(&ci, cfg), report))
}

/// [`run_instance_map`] with per-operator tracing — the
/// `EXPLAIN ANALYZE` entry point for named catalogs.
pub fn run_instance_map_traced<R: std::borrow::Borrow<Instance>>(
    rels: &BTreeMap<String, R>,
    q: &Query,
    cfg: &ExecConfig,
) -> Result<(Instance, OpReport), EngineError> {
    let lookup = |name: &str| -> Result<&Instance, RelError> {
        rels.get(name)
            .map(std::borrow::Borrow::borrow)
            .ok_or_else(|| RelError::missing_relation(name))
    };
    let (ci, report) = eval_columnar_traced(&lookup, q, cfg)?;
    Ok((to_rows_par(&ci, cfg), report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipdb_rel::instance;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn chain_query() -> Query {
        // σ_{#1=#2 ∧ #0≠#3}(V × V), exercising join extraction shape
        // plus residual; written directly as the join node.
        Query::join(
            Query::Input,
            Query::Input,
            [(1, 2)],
            Some(Pred::neq_cols(0, 3)),
        )
    }

    #[test]
    fn from_env_honors_ipdb_threads_format() {
        // Pure parser-side checks (no env mutation: other tests run in
        // parallel in this process).
        assert_eq!(ExecConfig::with_threads(0).threads, 1);
        assert_eq!(ExecConfig::serial().threads, 1);
        assert!(ExecConfig::from_env().threads >= 1);
    }

    #[test]
    fn threads_env_parser_warns_on_unusable_values() {
        // Unset: no thread count, no warning.
        assert_eq!(parse_threads_env(None), (None, None));
        // Usable values parse (whitespace trimmed), no warning.
        assert_eq!(parse_threads_env(Some("8")), (Some(8), None));
        assert_eq!(parse_threads_env(Some(" 4 ")), (Some(4), None));
        assert_eq!(parse_threads_env(Some("1")), (Some(1), None));
        // Values past the worker clamp are *kept* — run_morsels clamps
        // fan-out to 64, so a huge-but-parseable count is not an error.
        assert_eq!(parse_threads_env(Some("1000000")), (Some(1_000_000), None));
        // Set-but-unusable values all fall back WITH a warning.
        for bad in [
            "",
            "   ",
            "0",
            "four",
            "8x",
            "-2",
            "3.5",
            "99999999999999999999999999",
        ] {
            let (threads, warning) = parse_threads_env(Some(bad));
            assert_eq!(threads, None, "IPDB_THREADS={bad:?} should not parse");
            let warning = warning.unwrap_or_else(|| {
                panic!("IPDB_THREADS={bad:?} should warn, not be silently ignored")
            });
            assert!(
                warning.contains("IPDB_THREADS") && warning.contains("detected parallelism"),
                "warning should name the variable and the fallback: {warning}"
            );
        }
    }

    #[test]
    fn traced_executor_matches_untraced_and_times_nest() {
        // First column unique → exactly 60 distinct rows survive the set.
        let i = Instance::from_rows(2, (0..60i64).map(|x| [x, x % 5])).unwrap();
        let q = Query::union(chain_query(), Query::product(Query::Input, Query::Input));
        let expected = run_instance(&i, &q, &ExecConfig::serial()).unwrap();
        for threads in [1usize, 4] {
            let cfg = ExecConfig {
                threads,
                morsel_rows: 16,
                metrics: false,
            };
            let (out, report) = run_instance_traced(&i, &q, &cfg).unwrap();
            assert_eq!(out, expected, "threads={threads}");
            // The report mirrors the query tree: union over (join, x).
            assert_eq!(report.label, "union");
            assert_eq!(report.children.len(), 2);
            assert!(report.children[0].label.starts_with("join["));
            assert_eq!(report.children[0].build_left, Some(true));
            assert_eq!(report.children[1].label, "x");
            assert_eq!(report.node_count(), 7);
            // Cardinalities are real: the union's input is its children's
            // output, and every node's output count is exact.
            assert_eq!(report.rows_out, expected.len() as u64);
            assert_eq!(
                report.rows_in,
                report.children[0].rows_out + report.children[1].rows_out
            );
            assert_eq!(report.children[1].rows_out, (60 * 60) as u64);
            // Inclusive timing: parents cover their children, and the
            // exclusive times sum back to the root's inclusive time.
            for c in &report.children {
                assert!(c.ns <= report.ns, "child clock exceeds parent");
            }
            assert_eq!(report.total_exclusive_ns(), report.ns);
        }
    }

    #[test]
    fn traced_executor_mirrors_untraced_errors() {
        let i = instance![[1, 2]];
        let cfg = ExecConfig::serial();
        let q = Query::rel("R");
        assert!(matches!(
            run_instance_traced(&i, &q, &cfg),
            Err(EngineError::Rel(RelError::UnknownRelation { .. }))
        ));
        let q = Query::select(Query::Input, Pred::eq_cols(0, 9));
        assert_eq!(
            run_instance_traced(&i, &q, &cfg).map(|(out, _)| out),
            Err(EngineError::Rel(RelError::ColumnOutOfRange {
                col: 9,
                arity: 2
            }))
        );
    }

    #[test]
    fn metrics_flow_into_registry_when_config_asks() {
        // Per-config opt-in, not the global flag: a metrics:true config
        // records stage/morsel counters even with the flag off.
        let before = ipdb_obs::counter("exec.stages").get();
        let before_morsels = ipdb_obs::counter("exec.morsels").get();
        let cfg = ExecConfig {
            threads: 1,
            morsel_rows: 4,
            metrics: true,
        };
        let out = run_morsels(16, &cfg, |lo, hi| hi - lo);
        assert_eq!(out.iter().sum::<usize>(), 16);
        assert_eq!(ipdb_obs::counter("exec.stages").get(), before + 1);
        assert_eq!(ipdb_obs::counter("exec.morsels").get(), before_morsels + 4);
        // And a metrics:false config records nothing.
        let cfg_off = ExecConfig {
            metrics: false,
            ..cfg
        };
        run_morsels(16, &cfg_off, |lo, hi| hi - lo);
        assert_eq!(ipdb_obs::counter("exec.stages").get(), before + 1);
        assert_eq!(ipdb_obs::counter("exec.morsels").get(), before_morsels + 4);
    }

    #[test]
    fn run_morsels_is_order_deterministic() {
        let cfg = ExecConfig {
            threads: 8,
            morsel_rows: 3,
            ..ExecConfig::serial()
        };
        let out = run_morsels(25, &cfg, |lo, hi| (lo, hi));
        let expected: Vec<(usize, usize)> =
            (0..9).map(|k| (k * 3, ((k + 1) * 3).min(25))).collect();
        // The 8-thread run returns spans in morsel order, whatever order
        // the workers claimed them in.
        assert_eq!(out, expected);
        let serial = run_morsels(25, &ExecConfig::serial(), |lo, hi| (lo, hi));
        assert_eq!(serial, vec![(0, 25)]);
        // Zero rows → no morsels.
        assert!(run_morsels(0, &cfg, |lo, hi| (lo, hi)).is_empty());
    }

    #[test]
    fn run_morsels_survives_payload_panics() {
        let cfg = ExecConfig {
            threads: 4,
            morsel_rows: 1,
            ..ExecConfig::serial()
        };
        // A panicking morsel payload propagates (whichever thread ran
        // it) without deadlocking the caller...
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_morsels(16, &cfg, |lo, _| {
                assert!(lo != 7, "boom");
                lo
            })
        }));
        assert!(result.is_err());
        // ...and leaves the worker pool usable for the next stage.
        let ok = run_morsels(16, &cfg, |lo, _| lo);
        assert_eq!(ok, (0..16).collect::<Vec<usize>>());
    }

    #[test]
    fn executor_matches_row_path_across_configs() {
        let i = Instance::from_rows(2, (0..40i64).map(|x| [x % 6, x % 4])).unwrap();
        let q = chain_query();
        let expected = q.eval(&i).unwrap();
        for threads in [1usize, 2, 8] {
            for morsel_rows in [1usize, 7, 1024] {
                let cfg = ExecConfig {
                    threads,
                    morsel_rows,
                    ..ExecConfig::serial()
                };
                assert_eq!(
                    run_instance(&i, &q, &cfg).unwrap(),
                    expected,
                    "threads={threads} morsel={morsel_rows}"
                );
            }
        }
    }

    #[test]
    fn executor_mirrors_row_path_errors() {
        let i = instance![[1, 2]];
        let cfg = ExecConfig::serial();
        // Missing second input.
        let q = Query::product(Query::Input, Query::Second);
        assert!(matches!(
            run_instance(&i, &q, &cfg),
            Err(EngineError::Rel(RelError::NoSecondInput))
        ));
        // Unknown relation.
        let q = Query::rel("R");
        assert!(matches!(
            run_instance(&i, &q, &cfg),
            Err(EngineError::Rel(RelError::UnknownRelation { .. }))
        ));
        // Out-of-range selection column.
        let q = Query::select(Query::Input, Pred::eq_cols(0, 9));
        assert_eq!(
            run_instance(&i, &q, &cfg),
            Err(EngineError::Rel(RelError::ColumnOutOfRange {
                col: 9,
                arity: 2
            }))
        );
        // Set-op arity mismatch.
        let q = Query::union(Query::Input, Query::Lit(instance![[1]]));
        assert!(run_instance(&i, &q, &cfg).is_err());
    }

    #[test]
    #[ignore = "manual stage profiling; run with --release --nocapture"]
    fn profile_parallel_stages() {
        use std::time::Instant;
        let build_rows = 1024usize;
        let probe_rows = 100_000usize;
        let r = Instance::from_rows(2, (0..build_rows as i64).map(|k| [k, k])).unwrap();
        let i = Instance::from_rows(2, (0..probe_rows as i64).map(|j| [j, j % 3])).unwrap();
        let rels: BTreeMap<String, Instance> =
            [("R".to_string(), r.clone()), ("S".to_string(), i.clone())]
                .into_iter()
                .collect();
        let q = Query::join(
            Query::select(Query::rel("R"), Pred::neq_const(1, Value::from(0i64))),
            Query::rel("S"),
            [(1, 2)],
            Some(Pred::neq_cols(0, 3)),
        );
        fn med(mut f: impl FnMut()) -> f64 {
            let mut s: Vec<f64> = (0..5)
                .map(|_| {
                    let t0 = Instant::now();
                    f();
                    t0.elapsed().as_secs_f64() * 1e3
                })
                .collect();
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            s[2]
        }
        for threads in [1usize, 2] {
            let cfg = ExecConfig::with_threads(threads);
            let left = from_rows_par(&r, &cfg);
            let right = from_rows_par(&i, &cfg);
            let t_from = med(|| {
                from_rows_par(&i, &cfg);
            });
            let index = JoinIndex::build(&left, vec![1]);
            let t_build = med(|| {
                JoinIndex::build(&left, vec![1]);
            });
            let probe = || {
                run_morsels(right.len(), &cfg, |lo, hi| {
                    let mut pairs = Vec::new();
                    index.probe_range(&left, &right, &[0], lo, hi, &mut pairs);
                    ColumnarInstance::concat_pairs(&left, &right, &pairs)
                })
            };
            let t_probe = med(|| {
                probe();
            });
            let joined = ColumnarInstance::vstack(4, probe()).unwrap();
            let t_vstack = med(|| {
                ColumnarInstance::vstack(4, probe()).unwrap();
            }) - t_probe;
            let filter = Pred::neq_cols(0, 3);
            let filtered = par_select(&joined, &filter, &cfg).unwrap();
            let t_select = med(|| {
                par_select(&joined, &filter, &cfg).unwrap();
            });
            let out = to_rows_par(&filtered, &cfg);
            let t_rows = med(|| {
                to_rows_par(&filtered, &cfg);
            });
            let t_whole = med(|| {
                run_instance_map(&rels, &q, &cfg).unwrap();
            });
            eprintln!(
                "threads={threads}: from_rows(S) {t_from:.1}ms build {t_build:.1}ms \
                 probe+gather {t_probe:.1}ms vstack {t_vstack:.1}ms select {t_select:.1}ms \
                 to_rows {t_rows:.1}ms | whole {t_whole:.1}ms ({} rows probed->{} out)",
                right.len(),
                out.len()
            );
        }
    }

    #[test]
    fn catalog_map_resolves_reserved_names() {
        let rels: BTreeMap<String, Instance> = [
            ("V".to_string(), instance![[1], [2]]),
            ("R".to_string(), instance![[2], [3]]),
        ]
        .into_iter()
        .collect();
        let q = Query::intersect(Query::Input, Query::rel("R"));
        let cfg = ExecConfig::serial();
        assert_eq!(
            run_instance_map(&rels, &q, &cfg).unwrap(),
            q.eval_catalog(&rels).unwrap()
        );
    }
}
