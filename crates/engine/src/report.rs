//! `EXPLAIN ANALYZE`: per-operator execution reports.
//!
//! Where [`crate::plan::Plan::render_tree`] shows the *static* optimized
//! plan, the types here capture what actually happened when a query ran:
//! per-operator input/output cardinalities, selectivity, wall-clock
//! time, the hash join's build-side choice, and (on the c-/pc-table
//! paths) how many rows condition simplification pruned. A
//! [`QueryReport`] bundles the operator tree with whole-query totals,
//! the optimizer's pass count, and — for probabilistic answering — the
//! BDD manager's counters ([`ipdb_prob::BddStats`]).
//!
//! Timing is **inclusive**: each operator's clock starts before its
//! children evaluate and stops when its own output batch is ready, so a
//! node's `ns` always covers its subtree and the tree-wide sum of
//! [`OpReport::exclusive_ns`] equals the root's inclusive time exactly.

use std::fmt;

use ipdb_prob::BddStats;
use ipdb_rel::Query;

use crate::optimize::OptimizeStats;
use crate::parser::render_pred_string;

/// What one operator of an executed query did: cardinalities, timing,
/// and operator-specific annotations, with child operators nested
/// beneath it in plan order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpReport {
    /// Operator label, same vocabulary as `Plan::render_tree` (`join[…]`,
    /// `sigma[…]`, `pi[…]`, `x`, `union`, `V`, `lit …`).
    pub label: String,
    /// Output arity of the operator.
    pub arity: usize,
    /// Rows fed into the operator — the sum of its children's
    /// `rows_out`; for leaves (scans/literals) equal to `rows_out`.
    pub rows_in: u64,
    /// Rows the operator produced.
    pub rows_out: u64,
    /// Rows discarded by condition simplification (`simplified()` +
    /// `without_false_rows()`) right after this operator — always 0 on
    /// the instance path, where tuples carry no conditions.
    pub rows_pruned: u64,
    /// Inclusive wall-clock nanoseconds: this operator *and* its
    /// children (see the module docs).
    pub ns: u64,
    /// For hash joins: `Some(true)` if the left input was the build
    /// side, `Some(false)` for the right. `None` for every other
    /// operator and for joins that fell back to product + filter.
    pub build_left: Option<bool>,
    /// Child operator reports, in plan order (left before right).
    pub children: Vec<OpReport>,
}

impl OpReport {
    /// `rows_out / rows_in`, or `None` for a leaf with no input rows.
    pub fn selectivity(&self) -> Option<f64> {
        (self.rows_in > 0).then(|| self.rows_out as f64 / self.rows_in as f64)
    }

    /// Nanoseconds spent in this operator alone: inclusive time minus
    /// the children's inclusive time (saturating, in case clock
    /// granularity makes a child appear longer than its parent).
    pub fn exclusive_ns(&self) -> u64 {
        self.ns
            .saturating_sub(self.children.iter().map(|c| c.ns).sum())
    }

    /// Sum of [`OpReport::exclusive_ns`] over the whole subtree. By the
    /// inclusive-timing construction this equals `self.ns` up to the
    /// saturation in `exclusive_ns`, which is what makes the rendered
    /// per-operator times add up to the reported total.
    pub fn total_exclusive_ns(&self) -> u64 {
        self.exclusive_ns()
            + self
                .children
                .iter()
                .map(OpReport::total_exclusive_ns)
                .sum::<u64>()
    }

    /// Number of operators in the subtree (including this one).
    pub fn node_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(OpReport::node_count)
            .sum::<usize>()
    }

    fn render_into(&self, indent: usize, out: &mut String) {
        use std::fmt::Write as _;
        for _ in 0..indent {
            out.push_str("  ");
        }
        let _ = write!(
            out,
            "{}  (arity {}) rows: {} -> {}",
            self.label, self.arity, self.rows_in, self.rows_out
        );
        if let Some(sel) = self.selectivity() {
            let _ = write!(out, " (sel {sel:.3})");
        }
        let _ = write!(out, "  time: {}", fmt_ns(self.ns));
        if !self.children.is_empty() {
            let _ = write!(out, " (self {})", fmt_ns(self.exclusive_ns()));
        }
        if let Some(build_left) = self.build_left {
            let _ = write!(out, "  build={}", if build_left { "left" } else { "right" });
        }
        if self.rows_pruned > 0 {
            let _ = write!(out, "  pruned={}", self.rows_pruned);
        }
        out.push('\n');
        for c in &self.children {
            c.render_into(indent + 1, out);
        }
    }
}

/// The full `EXPLAIN ANALYZE` result for one query execution: the
/// annotated operator tree plus whole-query context.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReport {
    /// Which backend ran the query (`"instance"`, `"c-table"`,
    /// `"pc-table"`).
    pub backend: &'static str,
    /// The executed operator tree, annotated.
    pub root: OpReport,
    /// End-to-end nanoseconds as measured by the caller — covers the
    /// operator tree *plus* final result materialization, so it is
    /// always ≥ `root.ns`.
    pub total_ns: u64,
    /// What the plan optimizer did when the query was prepared.
    pub optimize: OptimizeStats,
    /// BDD manager counters, present only on the probabilistic
    /// (`answer_dist_analyzed`) path.
    pub bdd: Option<BddStats>,
}

impl QueryReport {
    /// Renders the report: an `EXPLAIN ANALYZE` header with totals and
    /// optimizer stats, the annotated operator tree, and — when present
    /// — a BDD statistics trailer.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "EXPLAIN ANALYZE (backend: {}, total: {}, optimizer: {} pass{}{})",
            self.backend,
            fmt_ns(self.total_ns),
            self.optimize.passes,
            if self.optimize.passes == 1 { "" } else { "es" },
            if self.optimize.converged {
                ", converged"
            } else {
                ", NOT converged"
            },
        );
        self.root.render_into(0, &mut out);
        if let Some(b) = &self.bdd {
            let _ = writeln!(
                out,
                "bdd: {} nodes ({} peak live), unique table {} hit / {} miss, \
                 apply cache {} hit / {} miss, {} wmc calls",
                b.nodes_allocated,
                b.peak_live_nodes,
                b.unique_hits,
                b.unique_misses,
                b.apply_cache_hits,
                b.apply_cache_misses,
                b.wmc_calls,
            );
        }
        out
    }
}

impl fmt::Display for OpReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.render_into(0, &mut out);
        f.write_str(&out)
    }
}

impl fmt::Display for QueryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Human-scale duration: `ns` up to 10µs, then `µs`/`ms`/`s`.
pub(crate) fn fmt_ns(ns: u64) -> String {
    if ns < 10_000 {
        format!("{ns}ns")
    } else if ns < 10_000_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

/// The operator label for a query node — same vocabulary as
/// `Plan::render_tree`, but over the executed [`Query`] (the executors
/// run compiled queries, not plans).
pub(crate) fn query_label(q: &Query) -> String {
    match q {
        Query::Input => "V".to_string(),
        Query::Second => "W".to_string(),
        Query::Rel(name) => name.clone(),
        Query::Lit(i) => format!("lit {i}"),
        Query::Project(cols, _) => format!("pi{cols:?}"),
        Query::Select(p, _) => format!("sigma[{}]", render_pred_string(p)),
        Query::Product(..) => "x".to_string(),
        Query::Join { on, residual, .. } => {
            let keys = on
                .iter()
                .map(|(i, j)| format!("#{i}=#{j}"))
                .collect::<Vec<_>>()
                .join(",");
            match residual {
                Some(p) => format!("join[{keys}; {}]", render_pred_string(p)),
                None => format!("join[{keys}]"),
            }
        }
        Query::Union(..) => "union".to_string(),
        Query::Diff(..) => "diff".to_string(),
        Query::Intersect(..) => "intersect".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(label: &str, rows: u64, ns: u64) -> OpReport {
        OpReport {
            label: label.to_string(),
            arity: 2,
            rows_in: rows,
            rows_out: rows,
            rows_pruned: 0,
            ns,
            build_left: None,
            children: Vec::new(),
        }
    }

    fn sample() -> OpReport {
        OpReport {
            label: "join[#1=#2]".to_string(),
            arity: 4,
            rows_in: 30,
            rows_out: 12,
            rows_pruned: 2,
            ns: 10_000,
            build_left: Some(true),
            children: vec![leaf("V", 10, 3_000), leaf("W", 20, 4_000)],
        }
    }

    #[test]
    fn exclusive_times_sum_to_inclusive_root() {
        let r = sample();
        assert_eq!(r.exclusive_ns(), 3_000);
        assert_eq!(r.total_exclusive_ns(), r.ns);
        assert_eq!(r.node_count(), 3);
        assert_eq!(r.selectivity(), Some(0.4));
        assert_eq!(leaf("V", 0, 1).selectivity(), None);
    }

    #[test]
    fn exclusive_ns_saturates_on_clock_skew() {
        let mut r = sample();
        r.ns = 1; // children appear longer than the parent
        assert_eq!(r.exclusive_ns(), 0);
        assert_eq!(r.total_exclusive_ns(), 7_000);
    }

    #[test]
    fn render_annotates_tree_and_header() {
        let report = QueryReport {
            backend: "instance",
            root: sample(),
            total_ns: 15_000,
            optimize: OptimizeStats {
                passes: 2,
                converged: true,
            },
            bdd: None,
        };
        let text = report.render();
        assert!(text.starts_with(
            "EXPLAIN ANALYZE (backend: instance, total: 15.0us, optimizer: 2 passes, converged)"
        ));
        assert!(text.contains("join[#1=#2]  (arity 4) rows: 30 -> 12 (sel 0.400)"));
        assert!(text.contains("build=left"));
        assert!(text.contains("pruned=2"));
        assert!(text.contains("\n  V  (arity 2)"));
        assert_eq!(text, report.to_string());
    }

    #[test]
    fn render_includes_bdd_trailer_when_present() {
        let report = QueryReport {
            backend: "pc-table",
            root: leaf("V", 3, 500),
            total_ns: 900,
            optimize: OptimizeStats {
                passes: 1,
                converged: true,
            },
            bdd: Some(BddStats {
                nodes_allocated: 40,
                unique_hits: 7,
                unique_misses: 40,
                apply_cache_hits: 5,
                apply_cache_misses: 11,
                peak_live_nodes: 42,
                wmc_calls: 3,
            }),
        };
        let text = report.render();
        assert!(text.contains("optimizer: 1 pass,"));
        assert!(text.contains(
            "bdd: 40 nodes (42 peak live), unique table 7 hit / 40 miss, \
             apply cache 5 hit / 11 miss, 3 wmc calls"
        ));
    }

    #[test]
    fn fmt_ns_picks_scale() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(25_500), "25.5us");
        assert_eq!(fmt_ns(12_000_000), "12.0ms");
        assert_eq!(fmt_ns(10_500_000_000), "10.50s");
    }

    #[test]
    fn query_labels_match_plan_vocabulary() {
        use ipdb_rel::{Pred, Query};
        assert_eq!(query_label(&Query::Input), "V");
        assert_eq!(query_label(&Query::project(Query::Input, vec![0])), "pi[0]");
        let j = Query::join(
            Query::Input,
            Query::Second,
            [(0, 2)],
            Some(Pred::neq_cols(0, 3)),
        );
        let label = query_label(&j);
        assert!(label.starts_with("join[#0=#2; "), "got {label}");
    }
}
