//! Errors for the query pipeline.

use std::fmt;

use ipdb_prob::ProbError;
use ipdb_rel::RelError;
use ipdb_tables::TableError;

/// Errors raised by parsing, planning, optimization, or execution.
// No `Eq`: `ProbError` wraps weights that are only `PartialEq`.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The surface-syntax parser rejected the input at byte offset `at`.
    Parse {
        /// Byte offset of the offending token in the source text.
        at: usize,
        /// What went wrong.
        msg: String,
    },
    /// The prepared plan expects an input of one arity but the backend
    /// supplied another.
    InputArityMismatch {
        /// Arity the plan was prepared for.
        expected: usize,
        /// Arity of the backend's input relation.
        got: usize,
    },
    /// A join key column does not address both sides of the join: each
    /// `on` pair must name one column of the left operand (`< left`) and
    /// one of the right (`left ≤ col < left + right`), in either order.
    /// `col` is the offending column of the combined tuple.
    JoinArity {
        /// The key column that is out of range or on the wrong side.
        col: usize,
        /// Arity of the join's left operand.
        left: usize,
        /// Arity of the join's right operand.
        right: usize,
    },
    /// A `Join` plan node with an empty `on` list. A join without key
    /// pairs is just a filtered product — write `sigma(... x ...)` so the
    /// plan says what it executes.
    EmptyJoinOn,
    /// A `Query::Rel` leaf whose name is not a valid surface-syntax
    /// relation name (identifier, not reserved). Rejected at plan build
    /// so every prepared statement renders to re-parseable text.
    BadRelationName {
        /// The offending name.
        name: String,
    },
    /// A catalog execution was missing a relation the prepared schema
    /// declares.
    MissingRelation {
        /// The declared relation name absent from the catalog.
        name: String,
    },
    /// A catalog relation's arity differs from the prepared schema's
    /// declaration.
    RelationArity {
        /// The relation name.
        name: String,
        /// Arity the schema declares.
        expected: usize,
        /// Arity the catalog supplied.
        got: usize,
    },
    /// An underlying relational error (arity mismatch, bad column, use of
    /// `W` outside a two-relation context).
    Rel(RelError),
    /// An underlying c-table algebra error.
    Table(TableError),
    /// An underlying probabilistic-layer error.
    Prob(ProbError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse { at, msg } => write!(f, "parse error at byte {at}: {msg}"),
            EngineError::InputArityMismatch { expected, got } => write!(
                f,
                "plan prepared for input arity {expected}, backend has arity {got}"
            ),
            EngineError::JoinArity { col, left, right } => write!(
                f,
                "join key column {col} does not span a join of arities {left}x{right} \
                 (need one column < {left} and one in {left}..{})",
                left + right
            ),
            EngineError::EmptyJoinOn => write!(
                f,
                "join has no key pairs; use a selection over a product instead"
            ),
            EngineError::BadRelationName { name } => write!(
                f,
                "'{name}' is not a valid relation name (use an identifier that is \
                 not a reserved word)"
            ),
            EngineError::MissingRelation { name } => {
                write!(f, "catalog has no relation '{name}' declared by the schema")
            }
            EngineError::RelationArity {
                name,
                expected,
                got,
            } => write!(
                f,
                "relation '{name}' prepared at arity {expected}, catalog supplied arity {got}"
            ),
            EngineError::Rel(e) => write!(f, "{e}"),
            EngineError::Table(e) => write!(f, "{e}"),
            EngineError::Prob(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<RelError> for EngineError {
    fn from(e: RelError) -> Self {
        EngineError::Rel(e)
    }
}

impl From<TableError> for EngineError {
    fn from(e: TableError) -> Self {
        EngineError::Table(e)
    }
}

impl From<ProbError> for EngineError {
    fn from(e: ProbError) -> Self {
        EngineError::Prob(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = EngineError::Parse {
            at: 3,
            msg: "expected ')'".into(),
        };
        assert!(e.to_string().contains("byte 3"));
        let m = EngineError::InputArityMismatch {
            expected: 2,
            got: 3,
        };
        assert!(m.to_string().contains("arity 2"));
        let r: EngineError = RelError::NoSecondInput.into();
        assert!(r.to_string().contains("second input"));
        let j = EngineError::JoinArity {
            col: 4,
            left: 2,
            right: 2,
        };
        assert!(j.to_string().contains("column 4"));
        assert!(j.to_string().contains("2x2"));
        assert!(EngineError::EmptyJoinOn
            .to_string()
            .contains("no key pairs"));
        assert!(EngineError::BadRelationName { name: "pi".into() }
            .to_string()
            .contains("'pi'"));
        assert!(EngineError::MissingRelation { name: "R".into() }
            .to_string()
            .contains("'R'"));
        let a = EngineError::RelationArity {
            name: "S".into(),
            expected: 2,
            got: 3,
        };
        assert!(a.to_string().contains("'S'") && a.to_string().contains("arity 2"));
    }
}
