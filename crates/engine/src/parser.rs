//! A compact textual surface syntax for the unnamed relational algebra.
//!
//! The grammar (whitespace-insensitive):
//!
//! ```text
//! query   := prod (("union" | "diff" | "intersect") prod)*     left-assoc
//! prod    := atom ("x" atom)*                                  left-assoc
//! atom    := name | literal
//!          | "pi" "[" int ("," int)* "]" "(" query ")"
//!          | "sigma" "[" pred "]" "(" query ")"
//!          | "join" "[" onlist (";" pred)? "]" "(" query "," query ")"
//!          | "(" query ")"
//! onlist  := (keypair ("," keypair)*)?
//! keypair := "#" int "=" "#" int
//! literal := "{" ":" int "}"                  empty relation of that arity
//!          | "{" tuple ("," tuple)* "}"
//! tuple   := "(" (value ("," value)*)? ")"
//! pred    := "true" | "false" | operand ("=" | "!=") operand
//!          | "and" "(" (pred ("," pred)*)? ")"
//!          | "or"  "(" (pred ("," pred)*)? ")"
//!          | "not" "(" pred ")"
//! operand := "#" int | value
//! value   := int | "'" chars "'" | "true" | "false"
//! name    := ident other than a reserved word; "V" and "W" parse to
//!            the canonical `Input`/`Second` leaves, any other name to
//!            `Query::Rel` (see [`is_relation_name`] / [`RESERVED_WORDS`])
//! ```
//!
//! Column references `#i` and projection lists are **0-based** (matching
//! the `Pred`/`Query` constructor APIs; the paper-style `Display` of
//! those types stays 1-based). String literals escape `'` and `\` with a
//! backslash.
//!
//! [`render`] emits this syntax canonically (binary operators fully
//! parenthesized, predicates in functional form), and [`parse`] inverts
//! it exactly: `parse(render(q)) == q` for every [`Query`] — including
//! n-ary `and`/`or` predicate nodes and empty relation literals, which
//! is why the canonical form is functional rather than infix.

use std::fmt::Write as _;

use ipdb_rel::{CmpOp, Instance, Operand, Pred, Query, Tuple, Value};

use crate::error::EngineError;

// ---------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------

/// Renders a query in the canonical surface syntax accepted by [`parse`].
pub fn render(q: &Query) -> String {
    let mut s = String::new();
    render_query(q, &mut s);
    s
}

fn render_query(q: &Query, out: &mut String) {
    match q {
        Query::Input => out.push('V'),
        Query::Second => out.push('W'),
        // Valid relation names (see `is_relation_name`) re-parse to the
        // same AST; the planner rejects the rest before they can render.
        Query::Rel(name) => out.push_str(name),
        Query::Lit(i) => render_literal(i, out),
        Query::Project(cols, q) => {
            out.push_str("pi[");
            for (i, c) in cols.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{c}");
            }
            out.push_str("](");
            render_query(q, out);
            out.push(')');
        }
        Query::Select(p, q) => {
            out.push_str("sigma[");
            render_pred(p, out);
            out.push_str("](");
            render_query(q, out);
            out.push(')');
        }
        Query::Product(a, b) => render_binary(a, "x", b, out),
        Query::Join {
            on,
            residual,
            left,
            right,
        } => {
            out.push_str("join[");
            for (n, (i, j)) in on.iter().enumerate() {
                if n > 0 {
                    out.push(',');
                }
                let _ = write!(out, "#{i}=#{j}");
            }
            if let Some(p) = residual {
                out.push_str("; ");
                render_pred(p, out);
            }
            out.push_str("](");
            render_query(left, out);
            out.push_str(", ");
            render_query(right, out);
            out.push(')');
        }
        Query::Union(a, b) => render_binary(a, "union", b, out),
        Query::Diff(a, b) => render_binary(a, "diff", b, out),
        Query::Intersect(a, b) => render_binary(a, "intersect", b, out),
    }
}

fn render_binary(a: &Query, op: &str, b: &Query, out: &mut String) {
    out.push('(');
    render_query(a, out);
    let _ = write!(out, " {op} ");
    render_query(b, out);
    out.push(')');
}

fn render_literal(i: &Instance, out: &mut String) {
    if i.is_empty() {
        let _ = write!(out, "{{:{}}}", i.arity());
        return;
    }
    out.push('{');
    for (n, t) in i.iter().enumerate() {
        if n > 0 {
            out.push(',');
        }
        out.push('(');
        for (m, v) in t.values().iter().enumerate() {
            if m > 0 {
                out.push(',');
            }
            render_value(v, out);
        }
        out.push(')');
    }
    out.push('}');
}

/// Renders a predicate in the canonical (functional) surface syntax.
pub fn render_pred_string(p: &Pred) -> String {
    let mut s = String::new();
    render_pred(p, &mut s);
    s
}

fn render_pred(p: &Pred, out: &mut String) {
    match p {
        Pred::True => out.push_str("true"),
        Pred::False => out.push_str("false"),
        Pred::Cmp(op, l, r) => {
            render_operand(l, out);
            out.push_str(match op {
                CmpOp::Eq => "=",
                CmpOp::Neq => "!=",
            });
            render_operand(r, out);
        }
        Pred::And(ps) => render_connective("and", ps, out),
        Pred::Or(ps) => render_connective("or", ps, out),
        Pred::Not(p) => {
            out.push_str("not(");
            render_pred(p, out);
            out.push(')');
        }
    }
}

fn render_connective(name: &str, ps: &[Pred], out: &mut String) {
    out.push_str(name);
    out.push('(');
    for (i, p) in ps.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        render_pred(p, out);
    }
    out.push(')');
}

fn render_operand(o: &Operand, out: &mut String) {
    match o {
        Operand::Col(c) => {
            let _ = write!(out, "#{c}");
        }
        Operand::Const(v) => render_value(v, out),
    }
}

fn render_value(v: &Value, out: &mut String) {
    match v {
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Str(s) => {
            out.push('\'');
            for ch in s.chars() {
                if ch == '\'' || ch == '\\' {
                    out.push('\\');
                }
                out.push(ch);
            }
            out.push('\'');
        }
    }
}

// ---------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Colon,
    Semi,
    Hash,
    Eq,
    Neq,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "'{s}'"),
            Tok::Int(i) => write!(f, "'{i}'"),
            Tok::Str(s) => write!(f, "string '{s}'"),
            Tok::LParen => write!(f, "'('"),
            Tok::RParen => write!(f, "')'"),
            Tok::LBracket => write!(f, "'['"),
            Tok::RBracket => write!(f, "']'"),
            Tok::LBrace => write!(f, "'{{'"),
            Tok::RBrace => write!(f, "'}}'"),
            Tok::Comma => write!(f, "','"),
            Tok::Colon => write!(f, "':'"),
            Tok::Semi => write!(f, "';'"),
            Tok::Hash => write!(f, "'#'"),
            Tok::Eq => write!(f, "'='"),
            Tok::Neq => write!(f, "'!='"),
        }
    }
}

/// The largest column index / projection index / `{:n}` arity literal
/// the parser accepts. Queries wider than this are far outside any
/// realistic schema, and the cap keeps every arity computation over
/// parsed queries (sums of operand arities, projection widths) well
/// inside `usize`.
pub const MAX_INDEX: usize = u16::MAX as usize;

/// The identifiers the grammar claims for itself: operator keywords,
/// predicate connectives, boolean values, and the reserved relation
/// names `V`/`W` (which parse to the canonical `Input`/`Second` leaves).
/// None of these can name a [`Query::Rel`] relation.
pub const RESERVED_WORDS: [&str; 14] = [
    "V",
    "W",
    "pi",
    "sigma",
    "join",
    "union",
    "diff",
    "intersect",
    "x",
    "and",
    "or",
    "not",
    "true",
    "false",
];

/// Whether `name` can name a relation in the surface syntax: a
/// non-empty ASCII identifier (`[A-Za-z_][A-Za-z0-9_]*`) that is not a
/// [reserved word](RESERVED_WORDS). The planner enforces this on every
/// [`Query::Rel`] leaf so prepared queries always render to text that
/// re-parses to the same AST.
pub fn is_relation_name(name: &str) -> bool {
    let mut chars = name.as_bytes().iter();
    let head_ok = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || *c == b'_');
    head_ok
        && chars.all(|c| c.is_ascii_alphanumeric() || *c == b'_')
        && !RESERVED_WORDS.contains(&name)
}

fn err(at: usize, msg: impl Into<String>) -> EngineError {
    EngineError::Parse {
        at,
        msg: msg.into(),
    }
}

fn tokenize(src: &str) -> Result<Vec<(usize, Tok)>, EngineError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        let tok = match b {
            b' ' | b'\t' | b'\n' | b'\r' => {
                i += 1;
                continue;
            }
            b'(' => Tok::LParen,
            b')' => Tok::RParen,
            b'[' => Tok::LBracket,
            b']' => Tok::RBracket,
            b'{' => Tok::LBrace,
            b'}' => Tok::RBrace,
            b',' => Tok::Comma,
            b':' => Tok::Colon,
            b';' => Tok::Semi,
            b'#' => Tok::Hash,
            b'=' => Tok::Eq,
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((i, Tok::Neq));
                    i += 2;
                    continue;
                }
                return Err(err(i, "expected '=' after '!'"));
            }
            b'\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => return Err(err(start, "unterminated string literal")),
                        Some(b'\'') => break,
                        Some(b'\\') => {
                            match bytes.get(i + 1) {
                                Some(&c @ (b'\'' | b'\\')) => s.push(c as char),
                                _ => return Err(err(i, "bad escape; only \\' and \\\\ allowed")),
                            }
                            i += 2;
                        }
                        Some(_) => {
                            // Consume one full UTF-8 character.
                            let ch = src[i..].chars().next().expect("in bounds");
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                toks.push((start, Tok::Str(s)));
                i += 1; // closing quote
                continue;
            }
            b'-' | b'0'..=b'9' => {
                let start = i;
                if b == b'-' {
                    i += 1;
                    if !bytes.get(i).is_some_and(u8::is_ascii_digit) {
                        return Err(err(start, "expected digits after '-'"));
                    }
                }
                while bytes.get(i).is_some_and(u8::is_ascii_digit) {
                    i += 1;
                }
                let text = &src[start..i];
                let n: i64 = text
                    .parse()
                    .map_err(|_| err(start, format!("integer '{text}' out of range")))?;
                toks.push((start, Tok::Int(n)));
                continue;
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let start = i;
                while bytes
                    .get(i)
                    .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_')
                {
                    i += 1;
                }
                toks.push((start, Tok::Ident(src[start..i].to_string())));
                continue;
            }
            _ => {
                let ch = src[i..].chars().next().expect("in bounds");
                return Err(err(i, format!("unexpected character '{ch}'")));
            }
        };
        toks.push((i, tok));
        i += 1;
    }
    Ok(toks)
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

/// Parses the surface syntax into a [`Query`] AST.
///
/// ```
/// use ipdb_engine::parser::parse;
/// use ipdb_rel::{instance, Pred, Query};
/// let q = parse("pi[0](sigma[#0=#2](V x V))").unwrap();
/// let expect = Query::project(
///     Query::select(Query::product(Query::Input, Query::Input), Pred::eq_cols(0, 2)),
///     vec![0],
/// );
/// assert_eq!(q, expect);
/// assert_eq!(parse("{(1,2),(3,4)}").unwrap(), Query::Lit(instance![[1, 2], [3, 4]]));
/// ```
pub fn parse(src: &str) -> Result<Query, EngineError> {
    let toks = tokenize(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        end: src.len(),
    };
    let q = p.query()?;
    if let Some((at, t)) = p.peek_at() {
        return Err(err(at, format!("trailing input starting with {t}")));
    }
    Ok(q)
}

/// Parses a predicate in the surface syntax (the `[...]` argument of
/// `sigma`), e.g. `and(#0=#1, #2!='a')`.
pub fn parse_pred(src: &str) -> Result<Pred, EngineError> {
    let toks = tokenize(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        end: src.len(),
    };
    let pred = p.pred()?;
    if let Some((at, t)) = p.peek_at() {
        return Err(err(at, format!("trailing input starting with {t}")));
    }
    Ok(pred)
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
    end: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn peek_at(&self) -> Option<(usize, &Tok)> {
        self.toks.get(self.pos).map(|(at, t)| (*at, t))
    }

    fn here(&self) -> usize {
        self.toks.get(self.pos).map_or(self.end, |(at, _)| *at)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, want: &Tok) -> Result<(), EngineError> {
        let at = self.here();
        match self.bump() {
            Some(ref t) if t == want => Ok(()),
            Some(t) => Err(err(at, format!("expected {want}, found {t}"))),
            None => Err(err(at, format!("expected {want}, found end of input"))),
        }
    }

    fn expect_int(&mut self) -> Result<i64, EngineError> {
        let at = self.here();
        match self.bump() {
            Some(Tok::Int(n)) => Ok(n),
            Some(t) => Err(err(at, format!("expected an integer, found {t}"))),
            None => Err(err(at, "expected an integer, found end of input")),
        }
    }

    fn expect_index(&mut self) -> Result<usize, EngineError> {
        let at = self.here();
        let n = self.expect_int()?;
        let idx =
            usize::try_from(n).map_err(|_| err(at, format!("index {n} must be non-negative")))?;
        // Cap column refs, projection lists, and `{:n}` arity literals so
        // downstream arity arithmetic (e.g. the planner's product arity
        // `a + b`) stays far from usize overflow instead of silently
        // wrapping in release builds.
        if idx > MAX_INDEX {
            return Err(err(
                at,
                format!("index {n} too large (maximum {MAX_INDEX})"),
            ));
        }
        Ok(idx)
    }

    // query := prod (("union"|"diff"|"intersect") prod)*
    fn query(&mut self) -> Result<Query, EngineError> {
        let mut q = self.prod()?;
        while let Some(Tok::Ident(id)) = self.peek() {
            let ctor = match id.as_str() {
                "union" => Query::union,
                "diff" => Query::diff,
                "intersect" => Query::intersect,
                _ => break,
            };
            self.bump();
            let rhs = self.prod()?;
            q = ctor(q, rhs);
        }
        Ok(q)
    }

    // prod := atom ("x" atom)*
    fn prod(&mut self) -> Result<Query, EngineError> {
        let mut q = self.atom()?;
        while matches!(self.peek(), Some(Tok::Ident(id)) if id == "x") {
            self.bump();
            let rhs = self.atom()?;
            q = Query::product(q, rhs);
        }
        Ok(q)
    }

    fn atom(&mut self) -> Result<Query, EngineError> {
        let at = self.here();
        match self.bump() {
            Some(Tok::Ident(id)) => match id.as_str() {
                "V" => Ok(Query::Input),
                "W" => Ok(Query::Second),
                "pi" => {
                    self.expect(&Tok::LBracket)?;
                    let mut cols = Vec::new();
                    if self.peek() != Some(&Tok::RBracket) {
                        loop {
                            cols.push(self.expect_index()?);
                            if self.peek() == Some(&Tok::Comma) {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&Tok::RBracket)?;
                    self.expect(&Tok::LParen)?;
                    let q = self.query()?;
                    self.expect(&Tok::RParen)?;
                    Ok(Query::project(q, cols))
                }
                "sigma" => {
                    self.expect(&Tok::LBracket)?;
                    let p = self.pred()?;
                    self.expect(&Tok::RBracket)?;
                    self.expect(&Tok::LParen)?;
                    let q = self.query()?;
                    self.expect(&Tok::RParen)?;
                    Ok(Query::select(q, p))
                }
                "join" => {
                    self.expect(&Tok::LBracket)?;
                    let mut on = Vec::new();
                    if matches!(self.peek(), Some(Tok::Hash)) {
                        loop {
                            self.expect(&Tok::Hash)?;
                            let i = self.expect_index()?;
                            self.expect(&Tok::Eq)?;
                            self.expect(&Tok::Hash)?;
                            let j = self.expect_index()?;
                            on.push((i, j));
                            if self.peek() == Some(&Tok::Comma) {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    let residual = if self.peek() == Some(&Tok::Semi) {
                        self.bump();
                        Some(self.pred()?)
                    } else {
                        None
                    };
                    self.expect(&Tok::RBracket)?;
                    self.expect(&Tok::LParen)?;
                    let left = self.query()?;
                    self.expect(&Tok::Comma)?;
                    let right = self.query()?;
                    self.expect(&Tok::RParen)?;
                    Ok(Query::join(left, right, on, residual))
                }
                other if is_relation_name(other) => Ok(Query::rel(other)),
                other => Err(err(
                    at,
                    format!(
                        "expected a query (a relation name, pi, sigma, join, a literal, \
                         or '('), found reserved word '{other}'"
                    ),
                )),
            },
            Some(Tok::LParen) => {
                let q = self.query()?;
                self.expect(&Tok::RParen)?;
                Ok(q)
            }
            Some(Tok::LBrace) => self.literal(at),
            Some(t) => Err(err(at, format!("expected a query, found {t}"))),
            None => Err(err(at, "expected a query, found end of input")),
        }
    }

    // Called with the opening '{' already consumed.
    fn literal(&mut self, at: usize) -> Result<Query, EngineError> {
        if self.peek() == Some(&Tok::Colon) {
            self.bump();
            let arity = self.expect_index()?;
            self.expect(&Tok::RBrace)?;
            return Ok(Query::Lit(Instance::empty(arity)));
        }
        let mut tuples = Vec::new();
        loop {
            self.expect(&Tok::LParen)?;
            let mut vals = Vec::new();
            if self.peek() != Some(&Tok::RParen) {
                loop {
                    vals.push(self.value()?);
                    if self.peek() == Some(&Tok::Comma) {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(&Tok::RParen)?;
            tuples.push(Tuple::new(vals));
            if self.peek() == Some(&Tok::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(&Tok::RBrace)?;
        let arity = tuples[0].arity();
        let inst = Instance::from_tuples(arity, tuples).map_err(|e| {
            err(
                at,
                format!("relation literal has tuples of differing arity ({e})"),
            )
        })?;
        Ok(Query::Lit(inst))
    }

    fn value(&mut self) -> Result<Value, EngineError> {
        let at = self.here();
        match self.bump() {
            Some(Tok::Int(n)) => Ok(Value::Int(n)),
            Some(Tok::Str(s)) => Ok(Value::str(s)),
            Some(Tok::Ident(id)) => match id.as_str() {
                "true" => Ok(Value::Bool(true)),
                "false" => Ok(Value::Bool(false)),
                other => Err(err(at, format!("expected a value, found '{other}'"))),
            },
            Some(t) => Err(err(at, format!("expected a value, found {t}"))),
            None => Err(err(at, "expected a value, found end of input")),
        }
    }

    fn pred(&mut self) -> Result<Pred, EngineError> {
        let at = self.here();
        match self.peek().cloned() {
            Some(Tok::Ident(id)) => match id.as_str() {
                // `true`/`false` are predicates unless followed by a
                // comparison, in which case they are boolean operands
                // (e.g. `true=#0`).
                "true" | "false"
                    if !matches!(
                        self.toks.get(self.pos + 1).map(|(_, t)| t),
                        Some(Tok::Eq) | Some(Tok::Neq)
                    ) =>
                {
                    self.bump();
                    Ok(if id == "true" {
                        Pred::True
                    } else {
                        Pred::False
                    })
                }
                "and" => {
                    self.bump();
                    Ok(Pred::And(self.pred_list()?))
                }
                "or" => {
                    self.bump();
                    Ok(Pred::Or(self.pred_list()?))
                }
                "not" => {
                    self.bump();
                    self.expect(&Tok::LParen)?;
                    let p = self.pred()?;
                    self.expect(&Tok::RParen)?;
                    Ok(Pred::not(p))
                }
                _ => self.cmp(),
            },
            Some(Tok::Hash | Tok::Int(_) | Tok::Str(_)) => self.cmp(),
            Some(t) => Err(err(at, format!("expected a predicate, found {t}"))),
            None => Err(err(at, "expected a predicate, found end of input")),
        }
    }

    fn pred_list(&mut self) -> Result<Vec<Pred>, EngineError> {
        self.expect(&Tok::LParen)?;
        let mut ps = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                ps.push(self.pred()?);
                if self.peek() == Some(&Tok::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        Ok(ps)
    }

    fn cmp(&mut self) -> Result<Pred, EngineError> {
        let l = self.operand()?;
        let at = self.here();
        let op = match self.bump() {
            Some(Tok::Eq) => CmpOp::Eq,
            Some(Tok::Neq) => CmpOp::Neq,
            Some(t) => return Err(err(at, format!("expected '=' or '!=', found {t}"))),
            None => return Err(err(at, "expected '=' or '!=', found end of input")),
        };
        let r = self.operand()?;
        Ok(Pred::Cmp(op, l, r))
    }

    fn operand(&mut self) -> Result<Operand, EngineError> {
        if self.peek() == Some(&Tok::Hash) {
            self.bump();
            return Ok(Operand::Col(self.expect_index()?));
        }
        Ok(Operand::Const(self.value()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipdb_rel::instance;
    use proptest::prelude::*;

    fn roundtrip(q: &Query) {
        let text = render(q);
        let back = parse(&text).unwrap_or_else(|e| panic!("re-parsing '{text}': {e}"));
        assert_eq!(&back, q, "canonical form was '{text}'");
    }

    #[test]
    fn roundtrip_every_constructor() {
        let lit = Query::Lit(instance![[1, 2], [3, 4]]);
        for q in [
            Query::Input,
            Query::Second,
            lit.clone(),
            Query::Lit(Instance::empty(3)),
            Query::Lit(instance![[true], [false]]),
            Query::project(Query::Input, vec![1, 0, 1]),
            Query::project(Query::Input, vec![]),
            Query::select(Query::Input, Pred::eq_cols(0, 1)),
            Query::product(Query::Input, lit.clone()),
            Query::union(Query::Input, lit.clone()),
            Query::diff(Query::Input, lit.clone()),
            Query::intersect(Query::Input, lit.clone()),
        ] {
            roundtrip(&q);
        }
    }

    #[test]
    fn roundtrip_every_pred_form() {
        for p in [
            Pred::True,
            Pred::False,
            Pred::eq_cols(0, 1),
            Pred::neq_const(2, -5),
            Pred::eq_const(0, "it's \\ here"),
            Pred::Cmp(CmpOp::Eq, Operand::val(true), Operand::Col(0)),
            Pred::Cmp(CmpOp::Neq, Operand::val("a"), Operand::val(3)),
            Pred::And(vec![]),
            Pred::Or(vec![]),
            Pred::And(vec![Pred::True]),
            Pred::and([
                Pred::eq_cols(0, 1),
                Pred::or([Pred::False, Pred::neq_cols(1, 2)]),
            ]),
            Pred::not(Pred::eq_const(0, 1)),
        ] {
            roundtrip(&Query::select(Query::Input, p.clone()));
            assert_eq!(parse_pred(&render_pred_string(&p)).unwrap(), p);
        }
    }

    #[test]
    fn roundtrip_join_forms() {
        let lit = Query::Lit(instance![[1, 2]]);
        for q in [
            Query::join(Query::Input, Query::Input, [(1, 2)], None),
            Query::join(Query::Input, lit.clone(), [(0, 2), (1, 3)], None),
            Query::join(
                Query::Input,
                Query::Input,
                [(1, 2)],
                Some(Pred::neq_const(0, 7)),
            ),
            Query::join(
                Query::Input,
                Query::Input,
                [(0, 2)],
                Some(Pred::and([Pred::eq_const(1, 1), Pred::neq_cols(1, 3)])),
            ),
            // Degenerate spellings the AST permits must round-trip too.
            Query::join(Query::Input, Query::Input, [], None),
            Query::join(Query::Input, Query::Input, [], Some(Pred::True)),
            // Joins nest like any other operator.
            Query::project(
                Query::join(
                    Query::join(Query::Input, Query::Input, [(1, 2)], None),
                    Query::Input,
                    [(3, 4)],
                    None,
                ),
                vec![0, 5],
            ),
        ] {
            roundtrip(&q);
        }
    }

    #[test]
    fn join_surface_syntax_parses() {
        assert_eq!(
            parse("join[#0=#2](V, V)").unwrap(),
            Query::join(Query::Input, Query::Input, [(0, 2)], None)
        );
        assert_eq!(
            parse("join[#0=#2; #1!=3](V, V)").unwrap(),
            Query::join(
                Query::Input,
                Query::Input,
                [(0, 2)],
                Some(Pred::neq_const(1, 3))
            )
        );
        assert_eq!(
            parse("join[](V, W)").unwrap(),
            Query::join(Query::Input, Query::Second, [], None)
        );
        // Whitespace-insensitive like the rest of the grammar.
        assert_eq!(
            parse(" join [ #0 = #2 , #1 = #3 ] ( V , V ) ").unwrap(),
            parse("join[#0=#2,#1=#3](V,V)").unwrap()
        );
        for (src, frag) in [
            ("join[#0=#2](V)", "expected ','"),
            ("join[#0](V, V)", "expected '='"),
            ("join[0=#1](V, V)", "expected ']'"),
            ("join[#0=#1(V, V)", "expected ']'"),
            ("join[#0=#-1](V, V)", "non-negative"),
        ] {
            match parse(src) {
                Err(EngineError::Parse { msg, .. }) => {
                    assert!(msg.contains(frag), "source '{src}': got '{msg}'")
                }
                other => panic!("source '{src}': expected parse error, got {other:?}"),
            }
        }
    }

    #[test]
    fn roundtrip_nested_query() {
        let q = Query::union(
            Query::project(
                Query::select(
                    Query::product(Query::Input, Query::product(Query::Input, Query::Second)),
                    Pred::and([Pred::eq_cols(1, 3), Pred::neq_const(0, "x")]),
                ),
                vec![0, 2],
            ),
            Query::diff(
                Query::Lit(instance![[1, 2]]),
                Query::intersect(Query::Input, Query::Input),
            ),
        );
        roundtrip(&q);
    }

    #[test]
    fn infix_is_left_associative_with_product_binding_tighter() {
        assert_eq!(
            parse("V union V union V").unwrap(),
            Query::union(Query::union(Query::Input, Query::Input), Query::Input)
        );
        assert_eq!(
            parse("V union V x V").unwrap(),
            Query::union(Query::Input, Query::product(Query::Input, Query::Input))
        );
        assert_eq!(
            parse("(V union V) x V").unwrap(),
            Query::product(Query::union(Query::Input, Query::Input), Query::Input)
        );
    }

    #[test]
    fn whitespace_is_insignificant() {
        assert_eq!(
            parse(" pi [ 0 , 1 ] ( V )\n").unwrap(),
            parse("pi[0,1](V)").unwrap()
        );
    }

    #[test]
    fn string_values_and_escapes() {
        let q = parse("sigma[#0='don\\'t']( V )").unwrap();
        assert_eq!(q, Query::select(Query::Input, Pred::eq_const(0, "don't")));
        let lit = parse("{('a\\\\b')}").unwrap();
        assert_eq!(lit, Query::Lit(instance![["a\\b"]]));
    }

    #[test]
    fn parse_errors_carry_positions() {
        for (src, frag) in [
            ("", "expected a query"),
            ("pi[0](V) garbage", "trailing"),
            ("pi[0(V)", "expected ']'"),
            ("sigma[#0](V)", "expected '=' or '!='"),
            ("sigma[#0=](V)", "expected a value"),
            ("{()", "expected '}'"),
            ("{(1),(2,3)}", "differing arity"),
            ("{:-1}", "non-negative"),
            ("sigma[#0='oops](V)", "unterminated"),
            ("V ? W", "unexpected character"),
            ("V !W", "expected '='"),
            ("sigma[#0='\\n'](V)", "bad escape"),
            ("pi[99999999999999999999](V)", "out of range"),
        ] {
            match parse(src) {
                Err(EngineError::Parse { msg, .. }) => {
                    assert!(msg.contains(frag), "source '{src}': got '{msg}'")
                }
                other => panic!("source '{src}': expected parse error, got {other:?}"),
            }
        }
    }

    #[test]
    fn numeric_edges_fail_gracefully() {
        // Oversized indexes in every index position (column refs,
        // projection lists, join keys, arity literals) are rejected with
        // a ParseError rather than flowing into usize arithmetic that
        // could silently wrap when arities are summed.
        for src in [
            "pi[65536](V)",
            "sigma[#65536=1](V)",
            "sigma[#0=#65536](V)",
            "join[#0=#65536](V, V)",
            "{:65536}",
            "{:9223372036854775807}",
        ] {
            match parse(src) {
                Err(EngineError::Parse { msg, .. }) => {
                    assert!(msg.contains("too large"), "source '{src}': got '{msg}'")
                }
                other => panic!("source '{src}': expected parse error, got {other:?}"),
            }
        }
        // Integers past i64 are caught at tokenization, in any position.
        for src in [
            "{(9223372036854775808)}",
            "sigma[#0=18446744073709551616](V)",
            "{:99999999999999999999}",
        ] {
            match parse(src) {
                Err(EngineError::Parse { msg, .. }) => {
                    assert!(msg.contains("out of range"), "source '{src}': got '{msg}'")
                }
                other => panic!("source '{src}': expected parse error, got {other:?}"),
            }
        }
        // The extremes that are in range still parse (and round-trip).
        roundtrip(&parse("{(9223372036854775807,-9223372036854775808)}").unwrap());
        let wide = parse(&format!("{{:{MAX_INDEX}}}")).unwrap();
        assert_eq!(wide, Query::Lit(Instance::empty(MAX_INDEX)));
        // Two maximal-arity literals still produce a sane product arity.
        let prod = Query::product(wide.clone(), wide);
        assert_eq!(prod.arity(1).unwrap(), 2 * MAX_INDEX);
    }

    #[test]
    fn named_relations_parse_and_roundtrip() {
        assert_eq!(parse("R").unwrap(), Query::rel("R"));
        assert_eq!(
            parse("join[#0=#2](R, S)").unwrap(),
            Query::join(Query::rel("R"), Query::rel("S"), [(0, 2)], None)
        );
        assert_eq!(
            parse("pi[0](R x Some_Table2 union V)").unwrap(),
            Query::project(
                Query::union(
                    Query::product(Query::rel("R"), Query::rel("Some_Table2")),
                    Query::Input
                ),
                vec![0]
            )
        );
        for q in [
            Query::rel("R"),
            Query::rel("_private"),
            Query::product(Query::rel("R"), Query::rel("S")),
            Query::join(Query::rel("R"), Query::Input, [(0, 2)], None),
            Query::diff(Query::rel("xs"), Query::rel("xs")),
        ] {
            roundtrip(&q);
        }
        // The alias spellings parse to the canonical leaves.
        assert_eq!(parse("V").unwrap(), Query::Input);
        assert_eq!(parse("W").unwrap(), Query::Second);
    }

    #[test]
    fn reserved_words_cannot_name_relations() {
        for src in ["union", "x", "and", "not", "true", "diff"] {
            match parse(src) {
                Err(EngineError::Parse { msg, .. }) => {
                    assert!(msg.contains("reserved"), "source '{src}': got '{msg}'")
                }
                other => panic!("source '{src}': expected parse error, got {other:?}"),
            }
        }
        // And `is_relation_name` is the same judgement, plus identifier
        // shape (the tokenizer already guarantees shape for parsed text).
        for bad in ["", "x", "pi", "V", "W", "2col", "a-b", "π", "a b"] {
            assert!(!is_relation_name(bad), "{bad:?} should be invalid");
        }
        for good in ["R", "_t", "Some_Table2", "vv", "xy"] {
            assert!(is_relation_name(good), "{good:?} should be valid");
        }
    }

    /// A pool biased toward the grammar's own metacharacters, with
    /// multibyte characters adjacent to every quoting/escape construct —
    /// any byte-boundary slip in the tokenizer panics here long before
    /// the soak case count.
    fn adversarial_source() -> impl Strategy<Value = String> {
        let pool: Vec<char> = "pisgmajoundftrx VW()[]{},:;#=!'\\-09π√é💥∪⋈\n\t"
            .chars()
            .collect();
        proptest::collection::vec(proptest::sample::select(pool), 0..32).prop_map(String::from_iter)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        /// Acceptance criterion: the parser never panics, on any input —
        /// including non-ASCII bytes in every position. Errors are fine;
        /// successful parses must render and re-parse to the same query.
        #[test]
        fn parse_never_panics_on_adversarial_strings(src in adversarial_source()) {
            if let Ok(q) = parse(&src) {
                roundtrip(&q);
            }
            let _ = parse_pred(&src);
        }
    }

    #[test]
    fn zero_arity_tuples_parse() {
        let q = parse("{()}").unwrap();
        assert_eq!(
            q,
            Query::Lit(Instance::singleton(Tuple::new(Vec::<Value>::new())))
        );
        roundtrip(&q);
    }
}
