//! The front door: parse/plan/optimize once, execute anywhere.
//!
//! [`Engine::prepare`] (or [`Engine::prepare_text`] for the surface
//! syntax) runs the first three pipeline stages — parse, plan,
//! optimize — and returns a [`Prepared`] statement holding both the
//! naive and the optimized plan. [`Prepared::execute`] runs the
//! optimized form against any [`Backend`]; [`Prepared::explain`] shows
//! what the optimizer did. Multi-relation queries prepare against a
//! named [`Schema`] ([`Engine::prepare_schema`] /
//! [`Engine::prepare_text_schema`]) and execute against a [`Catalog`]
//! ([`Prepared::execute_catalog`]).

use std::time::Instant;

use ipdb_prob::{PcTable, Weight};
use ipdb_rel::{Instance, Query, Schema, Tuple};

use crate::backend::{Backend, Catalog};
use crate::error::EngineError;
use crate::morsel::ExecConfig;
use crate::optimize::{optimize_plan_stats, OptimizeStats};
use crate::parser;
use crate::plan::Plan;
use crate::report::{OpReport, QueryReport};

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct Engine {
    /// Whether `prepare` runs the optimizer (on by default; turn off to
    /// compare naive evaluation, as `bench_engine` does).
    pub optimize: bool,
}

impl Default for Engine {
    fn default() -> Self {
        Engine { optimize: true }
    }
}

impl Engine {
    /// An engine with default settings (optimizer on).
    pub fn new() -> Engine {
        Engine::default()
    }

    /// Plans and optimizes a query for inputs of the given arity.
    pub fn prepare(&self, q: &Query, input_arity: usize) -> Result<Prepared, EngineError> {
        self.prepare_schema(q, &Schema::single(input_arity))
    }

    /// Plans and optimizes a query over an arbitrary named [`Schema`].
    pub fn prepare_schema(&self, q: &Query, schema: &Schema) -> Result<Prepared, EngineError> {
        let naive = Plan::from_query_schema(q, schema)?;
        let (optimized, optimize_stats) = if self.optimize {
            let (optimized, stats) = optimize_plan_stats(&naive);
            // Same invariant `optimize_plan` pins: the pass bound must
            // have sufficed (see `crate::optimize`).
            debug_assert!(
                stats.converged,
                "optimizer exhausted its fixpoint bound without converging \
                 ({} passes on a depth-{} plan)",
                stats.passes,
                naive.depth()
            );
            (optimized, stats)
        } else {
            (
                naive.clone(),
                OptimizeStats {
                    passes: 0,
                    converged: true,
                },
            )
        };
        // Lower both plans once here so repeated `execute` calls don't
        // pay a per-call plan-to-AST conversion.
        let naive_query = naive.to_query();
        let optimized_query = optimized.to_query();
        Ok(Prepared {
            schema: schema.clone(),
            naive,
            optimized,
            naive_query,
            optimized_query,
            optimize_stats,
        })
    }

    /// Parses the surface syntax, then plans and optimizes.
    pub fn prepare_text(&self, src: &str, input_arity: usize) -> Result<Prepared, EngineError> {
        self.prepare(&parser::parse(src)?, input_arity)
    }

    /// Parses the surface syntax, then plans and optimizes over a named
    /// [`Schema`].
    pub fn prepare_text_schema(&self, src: &str, schema: &Schema) -> Result<Prepared, EngineError> {
        self.prepare_schema(&parser::parse(src)?, schema)
    }
}

/// A planned (and possibly optimized) query, ready to execute on any
/// backend whose input arity matches (or any catalog implementing the
/// prepared schema).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prepared {
    schema: Schema,
    naive: Plan,
    optimized: Plan,
    naive_query: Query,
    optimized_query: Query,
    optimize_stats: OptimizeStats,
}

impl Prepared {
    /// The schema the statement was prepared over.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The arity of the reserved input relation `V` in the prepared
    /// schema — the classic single-input convention. `None` when the
    /// schema declares no `V` at all (purely named schemas), which is
    /// distinct from `Some(0)`, a declared nullary input: conflating
    /// the two is what let schema-validation paths misclassify named
    /// statements as nullary single-input ones.
    pub fn input_arity(&self) -> Option<usize> {
        self.schema.arity_of(Schema::INPUT)
    }

    /// Whether the prepared schema declares the reserved input `V` —
    /// i.e. whether [`Prepared::execute`]-style single-input calls can
    /// apply at all.
    pub fn has_input(&self) -> bool {
        self.schema.arity_of(Schema::INPUT).is_some()
    }

    /// The plan as written (arity-annotated, unoptimized).
    pub fn naive_plan(&self) -> &Plan {
        &self.naive
    }

    /// The optimized plan.
    pub fn plan(&self) -> &Plan {
        &self.optimized
    }

    /// The optimized query, lowered back to the executable AST (cached
    /// at `prepare` time).
    pub fn query(&self) -> &Query {
        &self.optimized_query
    }

    /// The original query, lowered back without optimization.
    pub fn naive_query(&self) -> &Query {
        &self.naive_query
    }

    /// Output arity of the statement.
    pub fn output_arity(&self) -> usize {
        self.optimized.arity
    }

    /// Before/after plan trees, for humans.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        out.push_str("naive plan:\n");
        out.push_str(&self.naive.render_tree());
        if self.optimized == self.naive {
            out.push_str("optimized plan: (unchanged)\n");
        } else {
            out.push_str("optimized plan:\n");
            out.push_str(&self.optimized.render_tree());
        }
        out
    }

    /// Executes the optimized plan against a backend.
    pub fn execute<B: Backend>(&self, input: &B) -> Result<B::Output, EngineError> {
        self.check_arity(input)?;
        input.run(&self.optimized_query)
    }

    /// Executes the *unoptimized* plan (the baseline `bench_engine`
    /// compares against).
    pub fn execute_naive<B: Backend>(&self, input: &B) -> Result<B::Output, EngineError> {
        self.check_arity(input)?;
        input.run(&self.naive_query)
    }

    /// Executes the optimized plan on the [`Instance`] backend with an
    /// explicit [`ExecConfig`] instead of [`ExecConfig::from_env`] —
    /// how benchmarks and determinism oracles pin thread count and
    /// morsel size without touching the process environment.
    pub fn execute_with(
        &self,
        input: &Instance,
        cfg: &ExecConfig,
    ) -> Result<Instance, EngineError> {
        self.check_arity(input)?;
        crate::morsel::run_instance(input, &self.optimized_query, cfg)
    }

    /// Executes the optimized plan against a named catalog. The catalog
    /// must supply every relation the prepared schema declares, at the
    /// declared arity ([`EngineError::MissingRelation`] /
    /// [`EngineError::RelationArity`] otherwise).
    pub fn execute_catalog<B: Backend>(&self, cat: &Catalog<B>) -> Result<B::Output, EngineError> {
        self.check_catalog(cat)?;
        B::run_catalog(cat, &self.optimized_query)
    }

    /// [`Prepared::execute_catalog`] on the [`Instance`] backend with
    /// an explicit [`ExecConfig`] (see [`Prepared::execute_with`]).
    pub fn execute_catalog_with(
        &self,
        cat: &Catalog<Instance>,
        cfg: &ExecConfig,
    ) -> Result<Instance, EngineError> {
        self.check_catalog(cat)?;
        crate::morsel::run_instance_map(cat.rels(), &self.optimized_query, cfg)
    }

    /// [`Prepared::execute_catalog`] with an explicit [`ExecConfig`] on
    /// *any* backend. Backends without a parallel executor ignore the
    /// config; the [`Instance`] backend routes it into the morsel
    /// executor (see [`Backend::run_catalog_with`]). This is the
    /// serving layer's execution path: a server worker runs each
    /// request with its configured parallelism instead of spawning a
    /// default-sized pool per query.
    pub fn execute_catalog_cfg<B: Backend>(
        &self,
        cat: &Catalog<B>,
        cfg: &ExecConfig,
    ) -> Result<B::Output, EngineError> {
        self.check_catalog(cat)?;
        B::run_catalog_with(cat, &self.optimized_query, cfg)
    }

    /// Executes the *unoptimized* plan against a named catalog (the
    /// differential baseline for [`Prepared::execute_catalog`]).
    pub fn execute_catalog_naive<B: Backend>(
        &self,
        cat: &Catalog<B>,
    ) -> Result<B::Output, EngineError> {
        self.check_catalog(cat)?;
        B::run_catalog(cat, &self.naive_query)
    }

    /// The full answer distribution over a pc-table backend — every
    /// possible answer tuple with its exact probability — via the **BDD
    /// fast path**: the optimized plan runs through the pruning c-table
    /// executor (Thm 9 closure), then every answer tuple's presence
    /// condition is compiled under the finite-domain one-hot encoding
    /// and weighted-model-counted with one shared `BddManager`
    /// ([`PcTable::marginals_bdd`]). No walk over the §8 valuation
    /// product space.
    pub fn answer_dist<W: Weight>(&self, pc: &PcTable<W>) -> Result<Vec<(Tuple, W)>, EngineError> {
        self.check_arity(pc)?;
        Ok(pc.run(&self.optimized_query)?.marginals_bdd()?)
    }

    /// The same answer distribution by full valuation enumeration over
    /// the *naive* plan's result — exponential in the number of
    /// variables. Kept reachable as the differential oracle for
    /// [`Prepared::answer_dist`] (see `tests/prob_oracle.rs` and the
    /// `bench_smoke` pc-table series).
    pub fn answer_dist_enum<W: Weight>(
        &self,
        pc: &PcTable<W>,
    ) -> Result<Vec<(Tuple, W)>, EngineError> {
        self.check_arity(pc)?;
        Ok(pc.run(&self.naive_query)?.mod_space()?.marginals())
    }

    /// The full answer distribution over a pc-table **catalog**: the
    /// optimized plan runs through the pruning executor across all
    /// pc-relations (one shared variable namespace — see
    /// [`Backend::run_catalog`] for [`PcTable`]), then the answer's
    /// presence conditions are compiled and counted with **one**
    /// `BddManager` shared across all answer tuples
    /// ([`PcTable::marginals_bdd`]).
    pub fn answer_dist_catalog<W: Weight>(
        &self,
        cat: &Catalog<PcTable<W>>,
    ) -> Result<Vec<(Tuple, W)>, EngineError> {
        self.check_catalog(cat)?;
        Ok(PcTable::run_catalog(cat, &self.optimized_query)?.marginals_bdd()?)
    }

    /// The same catalog answer distribution by full valuation
    /// enumeration over the naive plan — the differential oracle for
    /// [`Prepared::answer_dist_catalog`].
    pub fn answer_dist_catalog_enum<W: Weight>(
        &self,
        cat: &Catalog<PcTable<W>>,
    ) -> Result<Vec<(Tuple, W)>, EngineError> {
        self.check_catalog(cat)?;
        Ok(PcTable::run_catalog(cat, &self.naive_query)?
            .mod_space()?
            .marginals())
    }

    /// What the optimizer's fixpoint loop did when this statement was
    /// prepared (pass count, convergence). `passes == 0` means the
    /// optimizer was disabled.
    pub fn optimize_stats(&self) -> OptimizeStats {
        self.optimize_stats
    }

    /// Wraps an executed operator tree into a [`QueryReport`] with this
    /// statement's context.
    fn report<B: Backend>(&self, root: OpReport, started: Instant) -> QueryReport {
        QueryReport {
            backend: B::NAME,
            root,
            total_ns: u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            optimize: self.optimize_stats,
            bdd: None,
        }
    }

    /// [`Prepared::execute`] with **`EXPLAIN ANALYZE` instrumentation**:
    /// the identical output, plus a [`QueryReport`] recording what every
    /// operator of the optimized plan did — cardinalities, selectivity,
    /// inclusive/exclusive timings, the hash join's build side, and (on
    /// the c-/pc-table backends) rows pruned by condition
    /// simplification.
    pub fn execute_analyzed<B: Backend>(
        &self,
        input: &B,
    ) -> Result<(B::Output, QueryReport), EngineError> {
        self.check_arity(input)?;
        let t0 = Instant::now();
        let (out, root) = input.run_analyzed(&self.optimized_query)?;
        Ok((out, self.report::<B>(root, t0)))
    }

    /// [`Prepared::execute_analyzed`] on the [`Instance`] backend with
    /// an explicit [`ExecConfig`] (see [`Prepared::execute_with`]).
    pub fn execute_analyzed_with(
        &self,
        input: &Instance,
        cfg: &ExecConfig,
    ) -> Result<(Instance, QueryReport), EngineError> {
        self.check_arity(input)?;
        let t0 = Instant::now();
        let (out, root) = crate::morsel::run_instance_traced(input, &self.optimized_query, cfg)?;
        Ok((out, self.report::<Instance>(root, t0)))
    }

    /// [`Prepared::execute_catalog`] with `EXPLAIN ANALYZE`
    /// instrumentation (see [`Prepared::execute_analyzed`]).
    pub fn execute_catalog_analyzed<B: Backend>(
        &self,
        cat: &Catalog<B>,
    ) -> Result<(B::Output, QueryReport), EngineError> {
        self.check_catalog(cat)?;
        let t0 = Instant::now();
        let (out, root) = B::run_catalog_analyzed(cat, &self.optimized_query)?;
        Ok((out, self.report::<B>(root, t0)))
    }

    /// [`Prepared::execute_catalog_analyzed`] on the [`Instance`]
    /// backend with an explicit [`ExecConfig`].
    pub fn execute_catalog_analyzed_with(
        &self,
        cat: &Catalog<Instance>,
        cfg: &ExecConfig,
    ) -> Result<(Instance, QueryReport), EngineError> {
        self.check_catalog(cat)?;
        let t0 = Instant::now();
        let (out, root) =
            crate::morsel::run_instance_map_traced(cat.rels(), &self.optimized_query, cfg)?;
        Ok((out, self.report::<Instance>(root, t0)))
    }

    /// [`Prepared::answer_dist`] with `EXPLAIN ANALYZE` instrumentation:
    /// the identical distribution, plus a [`QueryReport`] whose operator
    /// tree covers the pruning c-table execution and whose
    /// [`QueryReport::bdd`] reports the shared `BddManager`'s counters
    /// from the WMC phase (node allocations, unique-table and
    /// apply-cache hit rates, WMC call count).
    pub fn answer_dist_analyzed<W: Weight>(
        &self,
        pc: &PcTable<W>,
    ) -> Result<(Vec<(Tuple, W)>, QueryReport), EngineError> {
        self.check_arity(pc)?;
        let t0 = Instant::now();
        let (answer, root) = pc.run_analyzed(&self.optimized_query)?;
        let (dist, bdd) = answer.marginals_bdd_traced()?;
        let mut report = self.report::<PcTable<W>>(root, t0);
        report.bdd = Some(bdd);
        Ok((dist, report))
    }

    /// [`Prepared::answer_dist_catalog`] with `EXPLAIN ANALYZE`
    /// instrumentation (see [`Prepared::answer_dist_analyzed`]).
    pub fn answer_dist_catalog_analyzed<W: Weight>(
        &self,
        cat: &Catalog<PcTable<W>>,
    ) -> Result<(Vec<(Tuple, W)>, QueryReport), EngineError> {
        self.check_catalog(cat)?;
        let t0 = Instant::now();
        let (answer, root) = PcTable::run_catalog_analyzed(cat, &self.optimized_query)?;
        let (dist, bdd) = answer.marginals_bdd_traced()?;
        let mut report = self.report::<PcTable<W>>(root, t0);
        report.bdd = Some(bdd);
        Ok((dist, report))
    }

    /// Executes against `input` and renders the annotated operator tree
    /// — `EXPLAIN ANALYZE` for humans (the output itself is discarded;
    /// use [`Prepared::execute_analyzed`] to keep both).
    pub fn explain_analyze<B: Backend>(&self, input: &B) -> Result<String, EngineError> {
        let (_, report) = self.execute_analyzed(input)?;
        Ok(report.render())
    }

    /// [`Prepared::explain_analyze`] against a named catalog.
    pub fn explain_analyze_catalog<B: Backend>(
        &self,
        cat: &Catalog<B>,
    ) -> Result<String, EngineError> {
        let (_, report) = self.execute_catalog_analyzed(cat)?;
        Ok(report.render())
    }

    fn check_arity<B: Backend>(&self, input: &B) -> Result<(), EngineError> {
        let expected = match self.schema.arity_of(Schema::INPUT) {
            Some(a) => a,
            // Prepared over a purely named schema: a bare input has no
            // name to bind to — same error a `V` leaf would report.
            None => {
                return Err(EngineError::Rel(ipdb_rel::RelError::UnknownRelation {
                    name: Schema::INPUT.to_string(),
                }))
            }
        };
        let got = input.input_arity();
        if got != expected {
            return Err(EngineError::InputArityMismatch { expected, got });
        }
        Ok(())
    }

    fn check_catalog<B: Backend>(&self, cat: &Catalog<B>) -> Result<(), EngineError> {
        for (name, expected) in self.schema.iter() {
            match cat.get(name) {
                None => {
                    return Err(EngineError::MissingRelation {
                        name: name.to_string(),
                    })
                }
                Some(rel) if rel.input_arity() != expected => {
                    return Err(EngineError::RelationArity {
                        name: name.to_string(),
                        expected,
                        got: rel.input_arity(),
                    })
                }
                Some(_) => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipdb_rel::{instance, Instance};

    #[test]
    fn prepare_text_and_execute() {
        let engine = Engine::new();
        let stmt = engine
            .prepare_text("pi[1](sigma[and(#0=1,#1=#3)](V x V))", 2)
            .unwrap();
        assert_eq!(stmt.input_arity(), Some(2));
        assert!(stmt.has_input());
        assert_eq!(stmt.output_arity(), 1);
        let i = instance![[1, 10], [2, 10], [2, 20]];
        let out = stmt.execute(&i).unwrap();
        assert_eq!(out, instance![[10]]);
        assert_eq!(out, stmt.execute_naive(&i).unwrap());
    }

    #[test]
    fn explain_shows_both_plans() {
        let stmt = Engine::new()
            .prepare_text("sigma[#0=1](sigma[#1=2](V))", 2)
            .unwrap();
        let text = stmt.explain();
        assert!(text.contains("naive plan:"));
        assert!(text.contains("optimized plan:"));
        assert!(text.contains("and(#1=2,#0=1)"));
        // The fused plan is strictly shallower.
        assert!(stmt.plan().depth() < stmt.naive_plan().depth());
    }

    #[test]
    fn sigma_product_prepares_to_a_hash_join() {
        // The acceptance-criterion shape: σ_{#0=#2}(R × S) must show a
        // Join node in explain() and execute identically to the naive
        // filtered product.
        let stmt = Engine::new()
            .prepare_text("sigma[#0=#2](V x V)", 2)
            .unwrap();
        let text = stmt.explain();
        assert!(text.contains("join[#0=#2]"), "explain was:\n{text}");
        assert!(!format!("{:?}", stmt.plan()).contains("Product"));
        let i = instance![[1, 10], [2, 20], [1, 30]];
        assert_eq!(stmt.execute(&i).unwrap(), stmt.execute_naive(&i).unwrap());
        assert_eq!(stmt.execute(&i).unwrap().len(), 5);
    }

    #[test]
    fn explain_notes_unchanged_plans() {
        let stmt = Engine::new().prepare_text("V", 2).unwrap();
        assert!(stmt.explain().contains("(unchanged)"));
    }

    #[test]
    fn optimizer_can_be_disabled() {
        let engine = Engine { optimize: false };
        let stmt = engine.prepare_text("sigma[true](V)", 2).unwrap();
        assert_eq!(stmt.query(), stmt.naive_query());
        let on = Engine::new().prepare_text("sigma[true](V)", 2).unwrap();
        assert_ne!(on.query(), on.naive_query());
    }

    #[test]
    fn arity_mismatch_is_rejected_at_execute() {
        let stmt = Engine::new().prepare_text("V", 2).unwrap();
        let narrow = Instance::empty(1);
        assert_eq!(
            stmt.execute(&narrow),
            Err(EngineError::InputArityMismatch {
                expected: 2,
                got: 1
            })
        );
    }

    #[test]
    fn prepare_rejects_ill_typed_text() {
        assert!(Engine::new().prepare_text("pi[4](V)", 2).is_err());
        assert!(Engine::new().prepare_text("pi[4(V)", 2).is_err());
    }

    #[test]
    fn prepare_schema_and_execute_catalog() {
        let schema = Schema::new([("R", 2), ("S", 2)]).unwrap();
        let stmt = Engine::new()
            .prepare_text_schema("join[#0=#2](R, S)", &schema)
            .unwrap();
        assert_eq!(stmt.schema(), &schema);
        assert_eq!(stmt.output_arity(), 4);
        // No V in this schema: the classic accessor says so (`None`,
        // not a fake arity 0) and single-input execution errors
        // gracefully.
        assert_eq!(stmt.input_arity(), None);
        assert!(!stmt.has_input());
        // ... whereas a genuinely declared nullary `V` is `Some(0)`.
        let nullary = Engine::new()
            .prepare_schema(&Query::Input, &Schema::single(0))
            .unwrap();
        assert_eq!(nullary.input_arity(), Some(0));
        assert!(nullary.has_input());
        assert!(matches!(
            stmt.execute(&instance![[1, 2]]),
            Err(EngineError::Rel(ipdb_rel::RelError::UnknownRelation { .. }))
        ));

        let cat: Catalog<Instance> = [
            ("R", instance![[1, 2], [5, 6]]),
            ("S", instance![[1, 9], [6, 0]]),
        ]
        .into_iter()
        .collect();
        let out = stmt.execute_catalog(&cat).unwrap();
        assert_eq!(out, instance![[1, 2, 1, 9]]);
        assert_eq!(out, stmt.execute_catalog_naive(&cat).unwrap());

        // Round-trip of the named surface text.
        let text = parser::render(stmt.naive_query());
        assert_eq!(parser::parse(&text).unwrap(), *stmt.naive_query());

        // Catalog checks: missing relation, wrong arity.
        let missing: Catalog<Instance> = [("R", instance![[1, 2]])].into_iter().collect();
        assert_eq!(
            stmt.execute_catalog(&missing),
            Err(EngineError::MissingRelation { name: "S".into() })
        );
        let narrow: Catalog<Instance> = [("R", instance![[1, 2]]), ("S", instance![[9]])]
            .into_iter()
            .collect();
        assert_eq!(
            stmt.execute_catalog(&narrow),
            Err(EngineError::RelationArity {
                name: "S".into(),
                expected: 2,
                got: 1
            })
        );
    }

    #[test]
    fn classic_prepare_runs_against_a_v_catalog() {
        // Single-input statements are the special case of catalogs keyed
        // by the reserved name V — the alias claim end to end.
        let stmt = Engine::new()
            .prepare_text("sigma[#0=#1](V x V)", 1)
            .unwrap();
        let i = instance![[1], [2]];
        let cat: Catalog<Instance> = [("V", i.clone())].into_iter().collect();
        assert_eq!(
            stmt.execute_catalog(&cat).unwrap(),
            stmt.execute(&i).unwrap()
        );
    }

    #[test]
    fn prepare_schema_rejects_bad_relation_names() {
        let schema = Schema::new([("R", 1)]).unwrap();
        // Reserved word as a Rel leaf (constructed, not parsed).
        let q = Query::Rel("pi".into());
        assert_eq!(
            Engine::new().prepare_schema(&q, &schema),
            Err(EngineError::BadRelationName { name: "pi".into() })
        );
        // Non-identifier name.
        let q = Query::Rel("not ident".into());
        assert!(matches!(
            Engine::new().prepare_schema(&q, &schema),
            Err(EngineError::BadRelationName { .. })
        ));
        // Non-canonical alias spelling is rejected too (use Query::rel).
        let q = Query::Rel("V".into());
        assert!(matches!(
            Engine::new().prepare_schema(&q, &schema),
            Err(EngineError::BadRelationName { .. })
        ));
    }

    #[test]
    fn rat_overflow_surfaces_as_error_from_answer_dist() {
        use ipdb_logic::{Condition, VarGen};
        use ipdb_prob::{FiniteSpace, PcTable, ProbError, Rat};
        use ipdb_rel::Value;
        use ipdb_tables::{t_const, t_var, CTable};

        // Adversarial denominators (~1e18 each) push the WMC and the
        // enumeration normalization past i128: both public engine entry
        // points must return ProbError::Overflow, never panic.
        let mut g = VarGen::new();
        let (x, y, z) = (g.fresh(), g.fresh(), g.fresh());
        const D: i128 = 1_000_000_000_000_000_003;
        let dist = || {
            FiniteSpace::new([
                (Value::from(0), Rat::new(1, D)),
                (Value::from(1), Rat::new(D - 1, D)),
            ])
            .unwrap()
        };
        let t = CTable::builder(1)
            .row(
                [t_var(x)],
                Condition::and([Condition::eq_vc(y, 0), Condition::eq_vc(z, 0)]),
            )
            .row([t_const(9)], Condition::eq_vc(x, 0))
            .build()
            .unwrap();
        let pc = PcTable::new(t, [(x, dist()), (y, dist()), (z, dist())]).unwrap();
        let stmt = Engine::new().prepare_text("sigma[#0!=1](V)", 1).unwrap();
        assert_eq!(
            stmt.answer_dist(&pc),
            Err(EngineError::Prob(ProbError::Overflow))
        );
        assert_eq!(
            stmt.answer_dist_enum(&pc),
            Err(EngineError::Prob(ProbError::Overflow))
        );
    }

    #[test]
    fn answer_dist_catalog_matches_enumeration() {
        use ipdb_logic::{Condition, VarGen};
        use ipdb_prob::{rat, FiniteSpace, PcTable, Rat};
        use ipdb_rel::Value;
        use ipdb_tables::{t_var, CTable};

        let mut g = VarGen::new();
        let (x, y) = (g.fresh(), g.fresh());
        let uniform =
            |n: i64| FiniteSpace::new((0..n).map(|i| (Value::from(i), rat!(1, n)))).unwrap();
        let r = CTable::builder(1)
            .row([t_var(x)], Condition::True)
            .build()
            .unwrap();
        let s = CTable::builder(1)
            .row([t_var(y)], Condition::neq_vv(x, y))
            .build()
            .unwrap();
        let cat: Catalog<PcTable<Rat>> = [
            ("R", PcTable::new(r, [(x, uniform(2))]).unwrap()),
            (
                "S",
                PcTable::new(s, [(x, uniform(2)), (y, uniform(2))]).unwrap(),
            ),
        ]
        .into_iter()
        .collect();
        let schema = Schema::new([("R", 1), ("S", 1)]).unwrap();
        let stmt = Engine::new()
            .prepare_text_schema("R intersect S", &schema)
            .unwrap();
        let bdd = stmt.answer_dist_catalog(&cat).unwrap();
        assert_eq!(bdd, stmt.answer_dist_catalog_enum(&cat).unwrap());
        // R ∩ S holds t iff x = t ∧ y = t ∧ x ≠ y: impossible.
        assert!(bdd.is_empty());
    }

    #[test]
    fn execute_analyzed_matches_execute_and_reports_consistently() {
        let stmt = Engine::new()
            .prepare_text("pi[1](sigma[and(#0=1,#1=#3)](V x V))", 2)
            .unwrap();
        let i = instance![[1, 10], [2, 10], [2, 20]];
        let (out, report) = stmt.execute_analyzed(&i).unwrap();
        assert_eq!(out, stmt.execute(&i).unwrap());
        assert_eq!(report.backend, "instance");
        // The caller's clock wraps the operator tree's.
        assert!(report.root.ns <= report.total_ns);
        assert_eq!(report.root.total_exclusive_ns(), report.root.ns);
        assert_eq!(report.root.rows_out, out.len() as u64);
        // Optimizer context rides along.
        assert_eq!(report.optimize, stmt.optimize_stats());
        assert!(report.optimize.converged);
        assert!(report.optimize.passes >= 1);
        // And the rendered form carries the header + annotated tree.
        let text = stmt.explain_analyze(&i).unwrap();
        assert!(
            text.contains("EXPLAIN ANALYZE (backend: instance"),
            "{text}"
        );
        assert!(text.contains("rows:"), "{text}");

        // A disabled optimizer reports 0 passes.
        let stmt_off = Engine { optimize: false }.prepare_text("V", 2).unwrap();
        assert_eq!(stmt_off.optimize_stats().passes, 0);
        assert!(stmt_off.optimize_stats().converged);

        // Arity mismatches reject before any execution, as in execute.
        let narrow = Instance::empty(1);
        assert!(matches!(
            stmt.execute_analyzed(&narrow),
            Err(EngineError::InputArityMismatch { .. })
        ));
    }

    #[test]
    fn analyzed_catalog_and_config_variants_agree() {
        let schema = Schema::new([("R", 2), ("S", 2)]).unwrap();
        let stmt = Engine::new()
            .prepare_text_schema("join[#0=#2](R, S)", &schema)
            .unwrap();
        let cat: Catalog<Instance> = [
            ("R", instance![[1, 2], [5, 6]]),
            ("S", instance![[1, 9], [6, 0]]),
        ]
        .into_iter()
        .collect();
        let expected = stmt.execute_catalog(&cat).unwrap();
        let (out, report) = stmt.execute_catalog_analyzed(&cat).unwrap();
        assert_eq!(out, expected);
        assert!(report.root.label.starts_with("join["));
        assert_eq!(report.root.build_left, Some(true));
        let cfg = ExecConfig {
            threads: 2,
            morsel_rows: 1,
            metrics: false,
        };
        let (out2, report2) = stmt.execute_catalog_analyzed_with(&cat, &cfg).unwrap();
        assert_eq!(out2, expected);
        assert_eq!(report2.root.rows_out, report.root.rows_out);
        assert!(stmt
            .explain_analyze_catalog(&cat)
            .unwrap()
            .contains("EXPLAIN ANALYZE"));
    }

    #[test]
    fn answer_dist_analyzed_matches_and_reports_bdd_stats() {
        use ipdb_logic::{Condition, VarGen};
        use ipdb_prob::{rat, FiniteSpace, PcTable};
        use ipdb_rel::Value;
        use ipdb_tables::{t_const, t_var, CTable};

        let mut g = VarGen::new();
        let (x, y) = (g.fresh(), g.fresh());
        let t = CTable::builder(1)
            .row([t_var(x)], Condition::True)
            .row([t_const(9)], Condition::eq_vv(x, y))
            .build()
            .unwrap();
        let uniform =
            |n: i64| FiniteSpace::new((0..n).map(|i| (Value::from(i), rat!(1, n)))).unwrap();
        let pc = PcTable::new(t, [(x, uniform(3)), (y, uniform(3))]).unwrap();
        let stmt = Engine::new()
            .prepare_text("sigma[#0!=1](V union {(9)})", 1)
            .unwrap();
        let (dist, report) = stmt.answer_dist_analyzed(&pc).unwrap();
        assert_eq!(dist, stmt.answer_dist(&pc).unwrap());
        assert_eq!(report.backend, "pc-table");
        let bdd = report.bdd.expect("probabilistic reports carry BDD stats");
        assert!(bdd.nodes_allocated > 0);
        assert!(bdd.wmc_calls > 0);
        assert!(report.render().contains("bdd:"), "{}", report.render());
    }

    #[test]
    fn answer_dist_bdd_path_matches_enumeration() {
        use ipdb_logic::{Condition, VarGen};
        use ipdb_prob::{rat, FiniteSpace, PcTable};
        use ipdb_rel::{tuple, Value};
        use ipdb_tables::{t_const, t_var, CTable};

        let mut g = VarGen::new();
        let (x, y) = (g.fresh(), g.fresh());
        let t = CTable::builder(1)
            .row([t_var(x)], Condition::True)
            .row([t_const(9)], Condition::eq_vv(x, y))
            .build()
            .unwrap();
        let uniform =
            |n: i64| FiniteSpace::new((0..n).map(|i| (Value::from(i), rat!(1, n)))).unwrap();
        let pc = PcTable::new(t, [(x, uniform(3)), (y, uniform(3))]).unwrap();
        let stmt = Engine::new()
            .prepare_text("sigma[#0!=1](V union {(9)})", 1)
            .unwrap();
        let bdd = stmt.answer_dist(&pc).unwrap();
        assert_eq!(bdd, stmt.answer_dist_enum(&pc).unwrap());
        // (9) is certain via the literal; (0) and (2) carry P[x=i] = 1/3.
        assert!(bdd.contains(&(tuple![9], rat!(1))));
        assert!(bdd.contains(&(tuple![0], rat!(1, 3))));
        // Arity mismatches are caught before any compilation.
        let stmt2 = Engine::new().prepare_text("V", 2).unwrap();
        assert!(matches!(
            stmt2.answer_dist(&pc),
            Err(EngineError::InputArityMismatch { .. })
        ));
    }
}
