//! The front door: parse/plan/optimize once, execute anywhere.
//!
//! [`Engine::prepare`] (or [`Engine::prepare_text`] for the surface
//! syntax) runs the first three pipeline stages — parse, plan,
//! optimize — and returns a [`Prepared`] statement holding both the
//! naive and the optimized plan. [`Prepared::execute`] runs the
//! optimized form against any [`Backend`]; [`Prepared::explain`] shows
//! what the optimizer did.

use ipdb_prob::{PcTable, Weight};
use ipdb_rel::{Query, Tuple};

use crate::backend::Backend;
use crate::error::EngineError;
use crate::optimize::optimize_plan;
use crate::parser;
use crate::plan::Plan;

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct Engine {
    /// Whether `prepare` runs the optimizer (on by default; turn off to
    /// compare naive evaluation, as `bench_engine` does).
    pub optimize: bool,
}

impl Default for Engine {
    fn default() -> Self {
        Engine { optimize: true }
    }
}

impl Engine {
    /// An engine with default settings (optimizer on).
    pub fn new() -> Engine {
        Engine::default()
    }

    /// Plans and optimizes a query for inputs of the given arity.
    pub fn prepare(&self, q: &Query, input_arity: usize) -> Result<Prepared, EngineError> {
        let naive = Plan::from_query(q, input_arity)?;
        let optimized = if self.optimize {
            optimize_plan(&naive)
        } else {
            naive.clone()
        };
        // Lower both plans once here so repeated `execute` calls don't
        // pay a per-call plan-to-AST conversion.
        let naive_query = naive.to_query();
        let optimized_query = optimized.to_query();
        Ok(Prepared {
            input_arity,
            naive,
            optimized,
            naive_query,
            optimized_query,
        })
    }

    /// Parses the surface syntax, then plans and optimizes.
    pub fn prepare_text(&self, src: &str, input_arity: usize) -> Result<Prepared, EngineError> {
        self.prepare(&parser::parse(src)?, input_arity)
    }
}

/// A planned (and possibly optimized) query, ready to execute on any
/// backend whose input arity matches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prepared {
    input_arity: usize,
    naive: Plan,
    optimized: Plan,
    naive_query: Query,
    optimized_query: Query,
}

impl Prepared {
    /// The input arity the statement was prepared for.
    pub fn input_arity(&self) -> usize {
        self.input_arity
    }

    /// The plan as written (arity-annotated, unoptimized).
    pub fn naive_plan(&self) -> &Plan {
        &self.naive
    }

    /// The optimized plan.
    pub fn plan(&self) -> &Plan {
        &self.optimized
    }

    /// The optimized query, lowered back to the executable AST (cached
    /// at `prepare` time).
    pub fn query(&self) -> &Query {
        &self.optimized_query
    }

    /// The original query, lowered back without optimization.
    pub fn naive_query(&self) -> &Query {
        &self.naive_query
    }

    /// Output arity of the statement.
    pub fn output_arity(&self) -> usize {
        self.optimized.arity
    }

    /// Before/after plan trees, for humans.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        out.push_str("naive plan:\n");
        out.push_str(&self.naive.render_tree());
        if self.optimized == self.naive {
            out.push_str("optimized plan: (unchanged)\n");
        } else {
            out.push_str("optimized plan:\n");
            out.push_str(&self.optimized.render_tree());
        }
        out
    }

    /// Executes the optimized plan against a backend.
    pub fn execute<B: Backend>(&self, input: &B) -> Result<B::Output, EngineError> {
        self.check_arity(input)?;
        input.run(&self.optimized_query)
    }

    /// Executes the *unoptimized* plan (the baseline `bench_engine`
    /// compares against).
    pub fn execute_naive<B: Backend>(&self, input: &B) -> Result<B::Output, EngineError> {
        self.check_arity(input)?;
        input.run(&self.naive_query)
    }

    /// The full answer distribution over a pc-table backend — every
    /// possible answer tuple with its exact probability — via the **BDD
    /// fast path**: the optimized plan runs through the pruning c-table
    /// executor (Thm 9 closure), then every answer tuple's presence
    /// condition is compiled under the finite-domain one-hot encoding
    /// and weighted-model-counted with one shared `BddManager`
    /// ([`PcTable::marginals_bdd`]). No walk over the §8 valuation
    /// product space.
    pub fn answer_dist<W: Weight>(&self, pc: &PcTable<W>) -> Result<Vec<(Tuple, W)>, EngineError> {
        self.check_arity(pc)?;
        Ok(pc.run(&self.optimized_query)?.marginals_bdd()?)
    }

    /// The same answer distribution by full valuation enumeration over
    /// the *naive* plan's result — exponential in the number of
    /// variables. Kept reachable as the differential oracle for
    /// [`Prepared::answer_dist`] (see `tests/prob_oracle.rs` and the
    /// `bench_smoke` pc-table series).
    pub fn answer_dist_enum<W: Weight>(
        &self,
        pc: &PcTable<W>,
    ) -> Result<Vec<(Tuple, W)>, EngineError> {
        self.check_arity(pc)?;
        Ok(pc.run(&self.naive_query)?.mod_space()?.marginals())
    }

    fn check_arity<B: Backend>(&self, input: &B) -> Result<(), EngineError> {
        let got = input.input_arity();
        if got != self.input_arity {
            return Err(EngineError::InputArityMismatch {
                expected: self.input_arity,
                got,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipdb_rel::{instance, Instance};

    #[test]
    fn prepare_text_and_execute() {
        let engine = Engine::new();
        let stmt = engine
            .prepare_text("pi[1](sigma[and(#0=1,#1=#3)](V x V))", 2)
            .unwrap();
        assert_eq!(stmt.input_arity(), 2);
        assert_eq!(stmt.output_arity(), 1);
        let i = instance![[1, 10], [2, 10], [2, 20]];
        let out = stmt.execute(&i).unwrap();
        assert_eq!(out, instance![[10]]);
        assert_eq!(out, stmt.execute_naive(&i).unwrap());
    }

    #[test]
    fn explain_shows_both_plans() {
        let stmt = Engine::new()
            .prepare_text("sigma[#0=1](sigma[#1=2](V))", 2)
            .unwrap();
        let text = stmt.explain();
        assert!(text.contains("naive plan:"));
        assert!(text.contains("optimized plan:"));
        assert!(text.contains("and(#1=2,#0=1)"));
        // The fused plan is strictly shallower.
        assert!(stmt.plan().depth() < stmt.naive_plan().depth());
    }

    #[test]
    fn sigma_product_prepares_to_a_hash_join() {
        // The acceptance-criterion shape: σ_{#0=#2}(R × S) must show a
        // Join node in explain() and execute identically to the naive
        // filtered product.
        let stmt = Engine::new()
            .prepare_text("sigma[#0=#2](V x V)", 2)
            .unwrap();
        let text = stmt.explain();
        assert!(text.contains("join[#0=#2]"), "explain was:\n{text}");
        assert!(!format!("{:?}", stmt.plan()).contains("Product"));
        let i = instance![[1, 10], [2, 20], [1, 30]];
        assert_eq!(stmt.execute(&i).unwrap(), stmt.execute_naive(&i).unwrap());
        assert_eq!(stmt.execute(&i).unwrap().len(), 5);
    }

    #[test]
    fn explain_notes_unchanged_plans() {
        let stmt = Engine::new().prepare_text("V", 2).unwrap();
        assert!(stmt.explain().contains("(unchanged)"));
    }

    #[test]
    fn optimizer_can_be_disabled() {
        let engine = Engine { optimize: false };
        let stmt = engine.prepare_text("sigma[true](V)", 2).unwrap();
        assert_eq!(stmt.query(), stmt.naive_query());
        let on = Engine::new().prepare_text("sigma[true](V)", 2).unwrap();
        assert_ne!(on.query(), on.naive_query());
    }

    #[test]
    fn arity_mismatch_is_rejected_at_execute() {
        let stmt = Engine::new().prepare_text("V", 2).unwrap();
        let narrow = Instance::empty(1);
        assert_eq!(
            stmt.execute(&narrow),
            Err(EngineError::InputArityMismatch {
                expected: 2,
                got: 1
            })
        );
    }

    #[test]
    fn prepare_rejects_ill_typed_text() {
        assert!(Engine::new().prepare_text("pi[4](V)", 2).is_err());
        assert!(Engine::new().prepare_text("pi[4(V)", 2).is_err());
    }

    #[test]
    fn answer_dist_bdd_path_matches_enumeration() {
        use ipdb_logic::{Condition, VarGen};
        use ipdb_prob::{rat, FiniteSpace, PcTable};
        use ipdb_rel::{tuple, Value};
        use ipdb_tables::{t_const, t_var, CTable};

        let mut g = VarGen::new();
        let (x, y) = (g.fresh(), g.fresh());
        let t = CTable::builder(1)
            .row([t_var(x)], Condition::True)
            .row([t_const(9)], Condition::eq_vv(x, y))
            .build()
            .unwrap();
        let uniform =
            |n: i64| FiniteSpace::new((0..n).map(|i| (Value::from(i), rat!(1, n)))).unwrap();
        let pc = PcTable::new(t, [(x, uniform(3)), (y, uniform(3))]).unwrap();
        let stmt = Engine::new()
            .prepare_text("sigma[#0!=1](V union {(9)})", 1)
            .unwrap();
        let bdd = stmt.answer_dist(&pc).unwrap();
        assert_eq!(bdd, stmt.answer_dist_enum(&pc).unwrap());
        // (9) is certain via the literal; (0) and (2) carry P[x=i] = 1/3.
        assert!(bdd.contains(&(tuple![9], rat!(1))));
        assert!(bdd.contains(&(tuple![0], rat!(1, 3))));
        // Arity mismatches are caught before any compilation.
        let stmt2 = Engine::new().prepare_text("V", 2).unwrap();
        assert!(matches!(
            stmt2.answer_dist(&pc),
            Err(EngineError::InputArityMismatch { .. })
        ));
    }
}
