//! The differential join oracle.
//!
//! The hash-equijoin path (`Query::Join` / `PlanNode::Join`) must be
//! *observably identical* to the naive filtered product
//! `σ_{⋀ #i=#j ∧ residual}(left × right)` it replaces, on every backend:
//!
//! * **instances** — exact relation equality;
//! * **c-tables** — equality of `ν(q̄(T))` under **every** valuation of
//!   the table's (≤ 3) variables over their finite domains, for both the
//!   plain `q̄` algebra (`eval_query`) and the engine's pruning executor
//!   (`Backend::run`);
//! * **pc-tables** — exact equality of the induced distribution over
//!   answer worlds.
//!
//! On top of the random join shapes, the optimizer's σ(×) → Join
//! rewrite is checked differentially: a selection-over-product query
//! whose predicate contains spanning equalities must plan to a `Join`
//! and still execute identically to the unoptimized plan.
//!
//! Run counts are deliberately modest for CI; soak with
//! `PROPTEST_CASES=256 cargo test -p ipdb-engine --test join_oracle`
//! (the vendored proptest honors the env override globally).

use std::collections::BTreeMap;

use proptest::prelude::*;

use ipdb_engine::{Catalog, Engine, ExecConfig, Plan, PlanNode, Schema};
use ipdb_logic::{Valuation, Var};
use ipdb_prob::{FiniteSpace, PcTable, Rat};
use ipdb_rel::strategies::{
    arb_catalog_case, arb_instance, arb_pred, arb_query, arb_query_with_arity,
};
use ipdb_rel::{Domain, Fragment, Instance, Pred, Query, Value};
use ipdb_tables::strategies::arb_finite_ctable;
use ipdb_tables::CTable;

/// Operands, key pairs, and optional residual of a random join.
type JoinShape = (Query, Query, Vec<(usize, usize)>, Option<Pred>);

/// A random equijoin shape: operands of arity 1..=2 (over an arity-2
/// input relation), 1..=2 spanning key pairs in random left/right order,
/// and an optional arbitrary residual over the combined tuple.
fn arb_join_shape() -> BoxedStrategy<JoinShape> {
    ((1usize..=2), (1usize..=2))
        .prop_flat_map(|(la, lb)| {
            let total = la + lb;
            let pair = ((0..la), (la..total), prop_oneof![Just(false), Just(true)]).prop_map(
                |(i, j, swap)| {
                    if swap {
                        (j, i)
                    } else {
                        (i, j)
                    }
                },
            );
            (
                arb_query_with_arity(2, la, 2, Fragment::RA, 3),
                arb_query_with_arity(2, lb, 2, Fragment::RA, 3),
                proptest::collection::vec(pair, 1..=2),
                prop_oneof![
                    1 => Just(None),
                    2 => arb_pred(total, 3, false).prop_map(Some),
                ],
            )
        })
        .boxed()
}

/// The pair under test: the first-class join and its σ(×) lowering.
fn join_and_oracle(
    left: Query,
    right: Query,
    on: Vec<(usize, usize)>,
    residual: Option<Pred>,
) -> (Query, Query) {
    let naive = Query::select(
        Query::product(left.clone(), right.clone()),
        Query::join_pred(&on, residual.as_ref()),
    );
    (Query::join(left, right, on, residual), naive)
}

/// Every total valuation over a set of finite variable domains — the
/// c-table analogue of "all possible worlds".
fn all_valuations_over(domains: &BTreeMap<Var, Domain>) -> Vec<Valuation> {
    let mut acc = vec![Valuation::new()];
    for (v, dom) in domains {
        let mut next = Vec::with_capacity(acc.len() * dom.len());
        for nu in &acc {
            for val in dom.iter() {
                let mut nu2 = nu.clone();
                nu2.bind(*v, val.clone());
                next.push(nu2);
            }
        }
        acc = next;
    }
    acc
}

/// Every total valuation of one table's variables.
fn all_valuations(t: &CTable) -> Vec<Valuation> {
    all_valuations_over(t.domains())
}

/// Uniform distributions over each variable's domain, making the
/// c-table a pc-table.
fn uniform_pctable(t: &CTable) -> PcTable<Rat> {
    let dists: Vec<(Var, FiniteSpace<Value, Rat>)> = t
        .domains()
        .iter()
        .map(|(v, dom)| {
            let n = dom.len() as i128;
            let d = FiniteSpace::new(dom.iter().map(|val| (val.clone(), Rat::new(1, n))))
                .expect("uniform masses sum to 1");
            (*v, d)
        })
        .collect();
    PcTable::new(t.clone(), dists).expect("every variable has a distribution")
}

/// Whether any node of the plan is a `Join`.
fn contains_join(p: &Plan) -> bool {
    match &p.node {
        PlanNode::Join { .. } => true,
        PlanNode::Input | PlanNode::Second | PlanNode::Rel(_) | PlanNode::Lit(_) => false,
        PlanNode::Project(_, c) | PlanNode::Select(_, c) => contains_join(c),
        PlanNode::Product(a, b)
        | PlanNode::Union(a, b)
        | PlanNode::Diff(a, b)
        | PlanNode::Intersect(a, b) => contains_join(a) || contains_join(b),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Instance backend: the hash join is *exactly* the filtered product.
    #[test]
    fn join_equals_naive_on_instances(
        (l, r, on, residual) in arb_join_shape(),
        i in arb_instance(2, 4, 3),
    ) {
        let (join, naive) = join_and_oracle(l, r, on, residual);
        prop_assert_eq!(
            join.eval(&i).unwrap(),
            naive.eval(&i).unwrap(),
            "join {} vs naive {}", join, naive
        );
    }

    /// The optimizer's σ(×) → Join rewrite: the prepared plan contains a
    /// Join node, and optimized execution matches naive execution.
    #[test]
    fn optimizer_join_extraction_is_sound(
        (l, r, on, residual) in arb_join_shape(),
        i in arb_instance(2, 4, 3),
    ) {
        let (_, naive) = join_and_oracle(l, r, on, residual);
        let stmt = Engine::new().prepare(&naive, 2).unwrap();
        prop_assert!(
            contains_join(stmt.plan()) || !format!("{:?}", stmt.plan()).contains("Product"),
            "σ(×) with spanning keys should plan to a Join (or fold away):\n{}",
            stmt.explain()
        );
        prop_assert_eq!(stmt.execute(&i).unwrap(), stmt.execute_naive(&i).unwrap());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// C-table backend: both the plain `q̄` algebra and the engine's
    /// pruning executor agree with the naive form under every valuation.
    #[test]
    fn join_equals_naive_on_ctables(
        (l, r, on, residual) in arb_join_shape(),
        t in arb_finite_ctable(2, 3, 3, 2),
    ) {
        let (join, naive) = join_and_oracle(l, r, on, residual);
        let jt = t.eval_query(&join).unwrap();
        let nt = t.eval_query(&naive).unwrap();
        let stmt = Engine { optimize: false }.prepare(&join, 2).unwrap();
        let pruned = stmt.execute(&t).unwrap();
        for nu in all_valuations(&t) {
            let world = t.apply_valuation(&nu).unwrap();
            let expect = naive.eval(&world).unwrap();
            prop_assert_eq!(
                jt.apply_valuation(&nu).unwrap(),
                expect.clone(),
                "join_bar vs per-world eval: query {} under {}", join, nu
            );
            prop_assert_eq!(
                nt.apply_valuation(&nu).unwrap(),
                expect.clone(),
                "naive q̄ vs per-world eval: query {} under {}", naive, nu
            );
            prop_assert_eq!(
                pruned.apply_valuation(&nu).unwrap(),
                expect,
                "pruning executor vs per-world eval: query {} under {}", join, nu
            );
        }
    }
}

// ---------------------------------------------------------------------
// Catalog oracles: random 2–3 relation schemas. Catalog execution (the
// optimized plan through the pruning executor) must equal naive
// evaluation — directly on instances, and worldwise on c-tables, where
// relations may *share* variables (one namespace: a shared variable is
// the same unknown in every relation).
// ---------------------------------------------------------------------

/// Pairs the schema's names with its generated relations.
fn catalog_of<T: Clone>(schema: &[(String, usize)], rels: [&T; 3]) -> Catalog<T> {
    schema
        .iter()
        .zip(rels)
        .map(|((n, _), r)| (n.clone(), r.clone()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Instance catalogs: engine catalog execution (optimized and
    /// naive plans) equals direct relational evaluation.
    #[test]
    fn catalog_execution_equals_naive_on_instances(
        (schema, q, i0, i1, i2) in arb_catalog_case(2, 3, 3, |a| arb_instance(a, 4, 3).boxed())
    ) {
        let s = Schema::new(schema.clone()).unwrap();
        let stmt = Engine::new().prepare_schema(&q, &s).unwrap();
        let cat = catalog_of(&schema, [&i0, &i1, &i2]);
        let map: BTreeMap<String, Instance> = cat
            .iter()
            .map(|(n, i)| (n.to_string(), i.clone()))
            .collect();
        let direct = q.eval_catalog(&map).unwrap();
        prop_assert_eq!(
            stmt.execute_catalog(&cat).unwrap(),
            direct.clone(),
            "optimized catalog plan diverged on {}", q
        );
        prop_assert_eq!(
            stmt.execute_catalog_naive(&cat).unwrap(),
            direct,
            "naive catalog plan diverged on {}", q
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// C-table catalogs: under every valuation of the (shared) variable
    /// namespace, the engine's catalog answer instantiates to exactly
    /// the conventional evaluation of the instantiated catalog.
    #[test]
    fn catalog_execution_equals_per_world_eval_on_ctables(
        (schema, q, t0, t1, t2) in arb_catalog_case(2, 2, 2, |a| arb_finite_ctable(a, 2, 3, 2))
    ) {
        let s = Schema::new(schema.clone()).unwrap();
        let stmt = Engine::new().prepare_schema(&q, &s).unwrap();
        let cat = catalog_of(&schema, [&t0, &t1, &t2]);
        let optimized = stmt.execute_catalog(&cat).unwrap();
        let naive = stmt.execute_catalog_naive(&cat).unwrap();
        let mut domains: BTreeMap<Var, Domain> = BTreeMap::new();
        for (_, t) in cat.iter() {
            domains.extend(t.domains().clone());
        }
        for nu in all_valuations_over(&domains) {
            let world: BTreeMap<String, Instance> = cat
                .iter()
                .map(|(n, t)| Ok((n.to_string(), t.apply_valuation(&nu)?)))
                .collect::<Result<_, ipdb_tables::TableError>>()
                .unwrap();
            let expect = q.eval_catalog(&world).unwrap();
            prop_assert_eq!(
                optimized.apply_valuation(&nu).unwrap(),
                expect.clone(),
                "optimized catalog executor vs per-world eval: {} under {}", q, nu
            );
            prop_assert_eq!(
                naive.apply_valuation(&nu).unwrap(),
                expect,
                "naive catalog executor vs per-world eval: {} under {}", q, nu
            );
        }
    }
}

// ---------------------------------------------------------------------
// Parallel-determinism oracles: the columnar morsel executor behind the
// Instance backend must be *bit-identical* to row-at-a-time evaluation
// for every thread count and morsel size — scheduling may never show
// through. The sweep covers degenerate morsels (1 row), a size that
// splits small inputs unevenly (7), and the default (1024, i.e. one
// morsel on test-sized data).
// ---------------------------------------------------------------------

/// The (threads, morsel_rows) grid every determinism property sweeps.
const EXEC_SWEEP: [(usize, usize); 9] = [
    (1, 1),
    (1, 7),
    (1, 1024),
    (2, 1),
    (2, 7),
    (2, 1024),
    (8, 1),
    (8, 7),
    (8, 1024),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Instance backend: for random RA queries, every executor
    /// configuration returns exactly `Query::eval`'s answer — on both
    /// the naive and the optimized plan.
    #[test]
    fn morsel_executor_identical_across_configs(
        q in arb_query(2, 2, 3, 3),
        i in arb_instance(2, 6, 3),
    ) {
        let expected = q.eval(&i).unwrap();
        let opt = Engine::new().prepare(&q, 2).unwrap();
        let naive = Engine { optimize: false }.prepare(&q, 2).unwrap();
        for (threads, morsel_rows) in EXEC_SWEEP {
            let cfg = ExecConfig { threads, morsel_rows, metrics: false };
            prop_assert_eq!(
                naive.execute_with(&i, &cfg).unwrap(),
                expected.clone(),
                "naive plan diverged at threads={} morsel={} on {}", threads, morsel_rows, q
            );
            prop_assert_eq!(
                opt.execute_with(&i, &cfg).unwrap(),
                expected.clone(),
                "optimized plan diverged at threads={} morsel={} on {}", threads, morsel_rows, q
            );
        }
    }

    /// Join shapes specifically: the parallel hash join equals the
    /// filtered product under every configuration.
    #[test]
    fn morsel_join_identical_across_configs(
        (l, r, on, residual) in arb_join_shape(),
        i in arb_instance(2, 4, 3),
    ) {
        let (join, naive) = join_and_oracle(l, r, on, residual);
        let expected = naive.eval(&i).unwrap();
        let stmt = Engine { optimize: false }.prepare(&join, 2).unwrap();
        for (threads, morsel_rows) in EXEC_SWEEP {
            let cfg = ExecConfig { threads, morsel_rows, metrics: false };
            prop_assert_eq!(
                stmt.execute_with(&i, &cfg).unwrap(),
                expected.clone(),
                "join {} diverged at threads={} morsel={}", join, threads, morsel_rows
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Catalog form: named-relation execution through the morsel
    /// executor equals direct relational evaluation for every
    /// configuration.
    #[test]
    fn morsel_catalog_identical_across_configs(
        (schema, q, i0, i1, i2) in arb_catalog_case(2, 3, 3, |a| arb_instance(a, 4, 3).boxed())
    ) {
        let s = Schema::new(schema.clone()).unwrap();
        let stmt = Engine::new().prepare_schema(&q, &s).unwrap();
        let cat = catalog_of(&schema, [&i0, &i1, &i2]);
        let map: BTreeMap<String, Instance> = cat
            .iter()
            .map(|(n, i)| (n.to_string(), i.clone()))
            .collect();
        let expected = q.eval_catalog(&map).unwrap();
        for (threads, morsel_rows) in EXEC_SWEEP {
            let cfg = ExecConfig { threads, morsel_rows, metrics: false };
            prop_assert_eq!(
                stmt.execute_catalog_with(&cat, &cfg).unwrap(),
                expected.clone(),
                "catalog query {} diverged at threads={} morsel={}", q, threads, morsel_rows
            );
        }
    }

    /// C-table backend: the vectorized ground-column selection agrees
    /// with the term-at-a-time path after condition pruning — the same
    /// normal form the engine's executor applies — and mirrors its
    /// error behavior exactly.
    #[test]
    fn vectorized_select_equals_term_path_on_ctables(
        p in arb_pred(2, 3, false),
        t in arb_finite_ctable(2, 3, 3, 2),
    ) {
        match (t.select_bar_vectorized(&p), t.select_bar(&p)) {
            (Ok(a), Ok(b)) => prop_assert_eq!(
                a.simplified().without_false_rows(),
                b.simplified().without_false_rows(),
                "vectorized σ diverged from term path on {}", p
            ),
            (a, b) => prop_assert_eq!(a, b, "paths disagreed on the error for {}", p),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Pc-table backend: the join induces exactly the distribution of
    /// the naive filtered product.
    #[test]
    fn join_equals_naive_on_pctables(
        (l, r, on, residual) in arb_join_shape(),
        t in arb_finite_ctable(2, 2, 2, 1),
    ) {
        let (join, naive) = join_and_oracle(l, r, on, residual);
        let pc = uniform_pctable(&t);
        let stmt_join = Engine { optimize: false }.prepare(&join, 2).unwrap();
        let stmt_naive = Engine { optimize: false }.prepare(&naive, 2).unwrap();
        let dj = stmt_join.execute(&pc).unwrap().mod_space().unwrap();
        let dn = stmt_naive.execute(&pc).unwrap().mod_space().unwrap();
        prop_assert!(
            dj.same_distribution(&dn),
            "join {} and naive {} induced different distributions", join, naive
        );
    }
}
