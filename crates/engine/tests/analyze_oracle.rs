//! The `EXPLAIN ANALYZE` differential oracle.
//!
//! Instrumented execution must be a **pure observer**: for random RA
//! queries, `execute_analyzed` (and its catalog/pc-table variants)
//! returns *exactly* the output of the uninstrumented path — on all
//! three backends, across thread counts and morsel sizes, with metrics
//! recording both off and on — and the [`QueryReport`] it attaches is
//! internally consistent:
//!
//! * the operator tree mirrors the executed query node for node;
//! * every operator's `rows_out` is exact (the root's equals the
//!   answer's cardinality) and `rows_in` is the sum of its children's
//!   outputs;
//! * timing is properly nested — children's inclusive clocks fit inside
//!   the parent's, and summing exclusive times over the tree
//!   reconstructs the root's inclusive time exactly.
//!
//! Run counts are deliberately modest for CI; soak with
//! `PROPTEST_CASES=256 cargo test -p ipdb-engine --test analyze_oracle`
//! (the vendored proptest honors the env override globally).

use proptest::prelude::*;

use ipdb_engine::{Engine, ExecConfig, OpReport};
use ipdb_logic::Var;
use ipdb_prob::{FiniteSpace, PcTable, Rat};
use ipdb_rel::strategies::{arb_instance, arb_query};
use ipdb_rel::Value;
use ipdb_tables::strategies::arb_finite_ctable;
use ipdb_tables::CTable;

/// (threads, morsel_rows) grid for the instance-backend sweep —
/// serial, oversubscribed, and tiny-morsel corners.
const EXEC_SWEEP: [(usize, usize); 5] = [(1, 1024), (2, 1), (2, 64), (8, 7), (8, 1024)];

/// Uniform distributions over each variable's domain, making the
/// c-table a pc-table.
fn uniform_pctable(t: &CTable) -> PcTable<Rat> {
    let dists: Vec<(Var, FiniteSpace<Value, Rat>)> = t
        .domains()
        .iter()
        .map(|(v, dom)| {
            let n = dom.len() as i128;
            let d = FiniteSpace::new(dom.iter().map(|val| (val.clone(), Rat::new(1, n))))
                .expect("uniform masses sum to 1");
            (*v, d)
        })
        .collect();
    PcTable::new(t.clone(), dists).expect("every variable has a distribution")
}

/// Structural consistency of one report tree: exact cardinality
/// accounting and properly nested inclusive timing.
fn check_report(root: &OpReport) -> Result<(), proptest::test_runner::TestCaseError> {
    if !root.children.is_empty() {
        let in_sum: u64 = root.children.iter().map(|c| c.rows_out).sum();
        prop_assert_eq!(root.rows_in, in_sum, "rows_in must sum children");
        let child_ns: u64 = root.children.iter().map(|c| c.ns).sum();
        prop_assert!(
            child_ns <= root.ns,
            "children's clocks ({child_ns}ns) exceed the parent's ({}ns)",
            root.ns
        );
    }
    prop_assert_eq!(
        root.total_exclusive_ns(),
        root.ns,
        "exclusive times must sum back to the inclusive root time"
    );
    for c in &root.children {
        check_report(c)?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Instance backend: `execute_analyzed_with` equals `execute_with`
    /// for every sweep configuration, metrics off and on, and the
    /// report is consistent.
    #[test]
    fn analyzed_instance_matches_plain_across_configs(
        q in arb_query(2, 2, 3, 3),
        i in arb_instance(2, 6, 3),
    ) {
        let stmt = Engine::new().prepare(&q, 2).unwrap();
        let expected = stmt.execute(&i).unwrap();
        for (threads, morsel_rows) in EXEC_SWEEP {
            for metrics in [false, true] {
                let cfg = ExecConfig { threads, morsel_rows, metrics };
                prop_assert_eq!(
                    stmt.execute_with(&i, &cfg).unwrap(),
                    expected.clone(),
                    "uninstrumented run diverged at threads={} morsel={}", threads, morsel_rows
                );
                let (out, report) = stmt.execute_analyzed_with(&i, &cfg).unwrap();
                prop_assert_eq!(
                    out.clone(),
                    expected.clone(),
                    "analyzed run diverged at threads={} morsel={} metrics={} on {}",
                    threads, morsel_rows, metrics, q
                );
                prop_assert_eq!(report.backend, "instance");
                prop_assert_eq!(report.root.rows_out, out.len() as u64);
                prop_assert!(report.root.ns <= report.total_ns);
                prop_assert_eq!(report.optimize, stmt.optimize_stats());
                check_report(&report.root)?;
            }
        }
    }

    /// C-table backend: the traced pruning executor returns exactly the
    /// untraced executor's table, and reports consistently.
    #[test]
    fn analyzed_ctable_matches_plain(
        q in arb_query(2, 2, 3, 3),
        t in arb_finite_ctable(2, 3, 3, 2),
    ) {
        let stmt = Engine::new().prepare(&q, 2).unwrap();
        let expected = stmt.execute(&t).unwrap();
        let (out, report) = stmt.execute_analyzed(&t).unwrap();
        prop_assert_eq!(&out, &expected, "analyzed c-table run diverged on {}", q);
        prop_assert_eq!(report.backend, "c-table");
        prop_assert_eq!(report.root.rows_out, out.rows().len() as u64);
        check_report(&report.root)?;
    }

    /// Pc-table backend: the analyzed distribution equals the plain BDD
    /// fast path's, and the attached BDD counters reflect real work.
    #[test]
    fn analyzed_answer_dist_matches_plain(
        q in arb_query(2, 2, 3, 3),
        t in arb_finite_ctable(2, 2, 2, 1),
    ) {
        let pc = uniform_pctable(&t);
        let stmt = Engine::new().prepare(&q, 2).unwrap();
        let expected = stmt.answer_dist(&pc).unwrap();
        let (dist, report) = stmt.answer_dist_analyzed(&pc).unwrap();
        prop_assert_eq!(&dist, &expected, "analyzed answer_dist diverged on {}", q);
        prop_assert_eq!(report.backend, "pc-table");
        let bdd = report.bdd.expect("probabilistic reports carry BDD stats");
        // One WMC call per candidate tuple; zero-probability candidates
        // are counted but dropped from the distribution.
        prop_assert!(bdd.wmc_calls >= dist.len() as u64);
        check_report(&report.root)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Catalog form on the instance backend: analyzed equals plain for
    /// every configuration.
    #[test]
    fn analyzed_catalog_matches_plain_across_configs(
        q in arb_query(2, 2, 3, 3),
        i in arb_instance(2, 6, 3),
    ) {
        use ipdb_engine::Catalog;
        use ipdb_rel::Instance;
        let stmt = Engine::new().prepare(&q, 2).unwrap();
        let cat: Catalog<Instance> = [("V", i.clone())].into_iter().collect();
        let expected = stmt.execute_catalog(&cat).unwrap();
        for (threads, morsel_rows) in EXEC_SWEEP {
            let cfg = ExecConfig { threads, morsel_rows, metrics: false };
            let (out, report) = stmt.execute_catalog_analyzed_with(&cat, &cfg).unwrap();
            prop_assert_eq!(
                out,
                expected.clone(),
                "analyzed catalog run diverged at threads={} morsel={}", threads, morsel_rows
            );
            check_report(&report.root)?;
        }
    }
}
