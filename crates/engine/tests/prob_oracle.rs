//! Differential probability oracle: the BDD fast path against valuation
//! enumeration.
//!
//! `Prepared::answer_dist` computes answer distributions by compiling
//! every answer tuple's presence condition under the finite-domain
//! one-hot encoding and weighted-model-counting it;
//! `Prepared::answer_dist_enum` walks the §8 valuation product space.
//! For exact rational weights the two must agree *exactly* — any
//! discrepancy in the encoding, the consistency constraint, or the WMC
//! skip handling shows up as a distribution mismatch here. Queries come
//! from `arb_query` (the same generator as the optimizer-equivalence
//! props), so the oracle also exercises the pruning executor and the
//! optimizer on the probabilistic path.
//!
//! Soak with `PROPTEST_CASES=256 cargo test -p ipdb-engine --test
//! prob_oracle`.

use proptest::prelude::*;

use ipdb_engine::{Catalog, Engine, Schema};
use ipdb_prob::{FiniteSpace, PcTable, Rat};
use ipdb_rel::strategies::{arb_catalog_case, arb_query};
use ipdb_rel::{Query, Tuple, Value};
use ipdb_tables::strategies::arb_finite_ctable;
use ipdb_tables::CTable;

/// Non-uniform exact-rational distributions: value `i` of a domain of
/// size `n` gets probability `(i+1) / (1 + 2 + … + n)` — every weight
/// distinct, so index mix-ups in the encoding cannot cancel out.
fn skewed_pctable(t: &CTable) -> PcTable<Rat> {
    let dists: Vec<_> = t
        .domains()
        .iter()
        .map(|(v, dom)| {
            let n = dom.len() as i128;
            let total = n * (n + 1) / 2;
            let d = FiniteSpace::new(
                dom.iter()
                    .enumerate()
                    .map(|(i, val)| (val.clone(), Rat::new(i as i128 + 1, total))),
            )
            .expect("triangular masses sum to 1");
            (*v, d)
        })
        .collect();
    PcTable::new(t.clone(), dists).expect("every variable has a domain")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Acceptance criterion: BDD-path answer distributions exactly equal
    /// valuation enumeration on random pc-tables and random queries.
    #[test]
    fn bdd_distribution_equals_enumeration(
        q in arb_query(2, 2, 3, 2),
        t in arb_finite_ctable(2, 3, 3, 2),
    ) {
        let pc = skewed_pctable(&t);
        let stmt = Engine::new().prepare(&q, 2).unwrap();
        let bdd = stmt.answer_dist(&pc).unwrap();
        let brute = stmt.answer_dist_enum(&pc).unwrap();
        prop_assert_eq!(bdd, brute, "query {}", q);
    }

    /// Per-tuple agreement on the raw table (no query in between):
    /// `tuple_prob_bdd` equals `tuple_prob_enum` for every possible
    /// tuple, and for impossible probes both report zero.
    #[test]
    fn tuple_probs_agree_on_raw_tables(t in arb_finite_ctable(2, 4, 3, 2)) {
        let pc = skewed_pctable(&t);
        for (tuple, p_enum) in pc.answer_dist_enum(&Query::Input).unwrap() {
            let p_bdd = pc.tuple_prob_bdd(&tuple).unwrap();
            prop_assert_eq!(p_bdd, p_enum, "tuple {}", tuple);
        }
        let absent = Tuple::new([Value::from(77), Value::from(77)]);
        prop_assert_eq!(pc.tuple_prob_bdd(&absent).unwrap(), Rat::ZERO);
        prop_assert_eq!(pc.tuple_prob_enum(&absent).unwrap(), Rat::ZERO);
    }

    /// Engine executor vs plain Theorem 9 closure: the pruning,
    /// ground-column-vectorized executor (`Backend::run`, behind
    /// `Prepared::execute`) induces exactly the same answer
    /// distribution as the term-at-a-time `PcTable::eval_query` —
    /// pruning a row and dropping a marginalized variable must never
    /// change the induced distribution.
    #[test]
    fn pruned_executor_preserves_distributions(
        q in arb_query(2, 2, 2, 2),
        t in arb_finite_ctable(2, 2, 2, 2),
    ) {
        let pc = skewed_pctable(&t);
        let stmt = Engine { optimize: false }.prepare(&q, 2).unwrap();
        let run = stmt.execute(&pc).unwrap().mod_space().unwrap();
        let plain = pc.eval_query(&q).unwrap().mod_space().unwrap();
        prop_assert!(
            run.same_distribution(&plain),
            "executor changed the distribution of {}", q
        );
    }

    /// The BDD path is invariant under optimization: the optimized and
    /// naive plans induce the same BDD-computed distribution.
    #[test]
    fn bdd_distribution_invariant_under_optimizer(
        q in arb_query(2, 2, 2, 2),
        t in arb_finite_ctable(2, 2, 2, 1),
    ) {
        let pc = skewed_pctable(&t);
        let on = Engine::new().prepare(&q, 2).unwrap();
        let off = Engine { optimize: false }.prepare(&q, 2).unwrap();
        prop_assert_eq!(
            on.answer_dist(&pc).unwrap(),
            off.answer_dist(&pc).unwrap(),
            "query {}", q
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Acceptance criterion, catalog form: over random multi-relation
    /// schemas, the catalog BDD path (one shared manager, merged
    /// variable namespace) produces exactly the enumeration
    /// distribution, and is invariant under optimization. Relations
    /// draw variables from one shared pool, so they overlap: the skewed
    /// distributions coincide on shared variables (they depend only on
    /// the — identical — domains), which is exactly the catalog's
    /// shared-namespace contract.
    #[test]
    fn catalog_bdd_distribution_equals_enumeration(
        (schema, q, t0, t1, t2) in arb_catalog_case(2, 2, 2, |a| arb_finite_ctable(a, 2, 2, 2))
    ) {
        let s = Schema::new(schema.clone()).unwrap();
        let on = Engine::new().prepare_schema(&q, &s).unwrap();
        let off = Engine { optimize: false }.prepare_schema(&q, &s).unwrap();
        let cat: Catalog<PcTable<Rat>> = schema
            .iter()
            .zip([&t0, &t1, &t2])
            .map(|((n, _), t)| (n.clone(), skewed_pctable(t)))
            .collect();
        let bdd = on.answer_dist_catalog(&cat).unwrap();
        prop_assert_eq!(
            bdd.clone(),
            on.answer_dist_catalog_enum(&cat).unwrap(),
            "BDD vs enumeration on catalog query {}", q
        );
        prop_assert_eq!(
            bdd,
            off.answer_dist_catalog(&cat).unwrap(),
            "optimizer changed the catalog distribution of {}", q
        );
    }
}
