//! Serving-layer oracles: thread-safety by construction, snapshot
//! consistency under concurrent writers, and end-to-end server answers.
//!
//! The static assertions pin the `Send + Sync` bounds the serving layer
//! is built on — losing one (say, by slipping a `Rc` or a raw
//! `RefCell` into `Prepared`) should fail *compilation*, not a race.
//!
//! The concurrency property is the ISSUE's torn-read oracle: N writer
//! threads install catalog versions while M readers execute a prepared
//! query against `snapshot()`s. Every installed version `k` sets **both**
//! `R` and `S` to the single tuple `(k, k)`, and writers record `k`
//! *before* installing, so a reader's `R intersect S` answer must be
//! `{(k, k)}` for some recorded `k` — a torn read (R from one version, S
//! from another) intersects to the empty relation and fails instantly,
//! and a half-written tuple fails the `row[0] == row[1]` check. Snapshot
//! versions observed by any single reader must also be monotone.
//!
//! Run counts are deliberately modest for CI; soak with
//! `PROPTEST_CASES=256 cargo test -p ipdb-engine --test serve_oracle`
//! (the vendored proptest honors the env override globally).

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};
use std::thread;

use proptest::prelude::*;

use ipdb_engine::{
    Catalog, Engine, PlanCache, Prepared, Server, ServerConfig, Snapshot, SnapshotCatalog, Ticket,
};
use ipdb_rel::{instance, Instance, Schema, Value};

fn assert_send_sync<T: Send + Sync>() {}
fn assert_send<T: Send>() {}

/// The serving layer's thread-safety contract, checked at compile time.
#[test]
fn serving_types_are_send_and_sync() {
    assert_send_sync::<Prepared>();
    assert_send_sync::<Arc<Prepared>>();
    assert_send_sync::<PlanCache>();
    assert_send_sync::<Snapshot<Instance>>();
    assert_send_sync::<SnapshotCatalog<Instance>>();
    assert_send_sync::<Server<Instance>>();
    // A Ticket wraps an `mpsc::Receiver`, which is deliberately single-
    // consumer: it moves between threads but is not shared.
    assert_send::<Ticket<Instance>>();
}

/// The catalog both relations carry at version stamp `k`.
fn versioned_catalog(k: i64) -> Catalog<Instance> {
    [("R", instance![[k, k]]), ("S", instance![[k, k]])]
        .into_iter()
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// N writers, M readers, no torn reads: every reader answer matches
    /// *some* installed snapshot, versions are monotone per reader.
    #[test]
    fn readers_only_ever_see_installed_snapshots(
        writers in 1usize..=3,
        readers in 1usize..=3,
        installs in 1u64..=6,
        reads in 1usize..=12,
    ) {
        let schema = Schema::new([("R", 2), ("S", 2)]).unwrap();
        let stmt = Arc::new(
            Engine::new().prepare_text_schema("R intersect S", &schema).unwrap(),
        );
        let snaps = Arc::new(SnapshotCatalog::new(versioned_catalog(0)));
        let recorded = Arc::new(Mutex::new(BTreeSet::from([0i64])));

        let outcome: Result<(), String> = thread::scope(|scope| {
            for w in 0..writers {
                let snaps = Arc::clone(&snaps);
                let recorded = Arc::clone(&recorded);
                scope.spawn(move || {
                    for i in 0..installs {
                        let stamp = (w as i64 + 1) * 1000 + i as i64;
                        // Record *before* installing: anything visible
                        // to a reader is already in the set.
                        recorded.lock().unwrap().insert(stamp);
                        if i % 2 == 0 {
                            snaps.install(versioned_catalog(stamp));
                        } else {
                            // The copy-on-write path: mutate a clone of
                            // the current catalog, swap it in whole.
                            snaps.update(|cat| {
                                cat.insert("R", instance![[stamp, stamp]]);
                                cat.insert("S", instance![[stamp, stamp]]);
                            });
                        }
                    }
                });
            }

            let mut handles = Vec::new();
            for _ in 0..readers {
                let snaps = Arc::clone(&snaps);
                let stmt = Arc::clone(&stmt);
                let recorded = Arc::clone(&recorded);
                handles.push(scope.spawn(move || -> Result<(), String> {
                    let mut last_version = 0u64;
                    for _ in 0..reads {
                        let snap = snaps.snapshot();
                        if snap.version() < last_version {
                            return Err(format!(
                                "snapshot version went backwards: {} after {}",
                                snap.version(),
                                last_version
                            ));
                        }
                        last_version = snap.version();
                        let ans = stmt
                            .execute_catalog(snap.catalog())
                            .map_err(|e| e.to_string())?;
                        let rows: Vec<_> = ans.iter().collect();
                        // Exactly one (k, k) row — a torn R/S pair
                        // intersects to zero rows.
                        if rows.len() != 1 || rows[0].get(0) != rows[0].get(1) {
                            return Err(format!("torn snapshot answer: {ans}"));
                        }
                        let stamp = match rows[0].get(0) {
                            Some(Value::Int(k)) => *k,
                            other => return Err(format!("non-integer stamp {other:?}")),
                        };
                        if !recorded.lock().unwrap().contains(&stamp) {
                            return Err(format!("answer stamp {stamp} was never installed"));
                        }
                    }
                    Ok(())
                }));
            }
            for h in handles {
                h.join().expect("reader panicked")?;
            }
            Ok(())
        });
        prop_assert_eq!(outcome, Ok(()));
    }
}

/// End-to-end through the [`Server`]'s queue and worker pool: a client
/// hammers queries while the main thread installs new versions; every
/// answer is a whole installed version, and shutdown drains cleanly.
#[test]
fn server_answers_match_some_installed_version() {
    let server = Arc::new(Server::<Instance>::start(
        versioned_catalog(0),
        ServerConfig::with_threads(4),
    ));
    let installed = Arc::new(Mutex::new(BTreeSet::from([0i64])));

    let client = {
        let server = Arc::clone(&server);
        let installed = Arc::clone(&installed);
        thread::spawn(move || {
            for _ in 0..200 {
                let ans = server.query("R intersect S").expect("query failed");
                let rows: Vec<_> = ans.iter().collect();
                assert_eq!(rows.len(), 1, "torn server answer: {ans}");
                assert_eq!(rows[0].get(0), rows[0].get(1), "half-written row: {ans}");
                let Some(Value::Int(stamp)) = rows[0].get(0) else {
                    panic!("non-integer stamp in {ans}");
                };
                assert!(
                    installed.lock().unwrap().contains(stamp),
                    "stamp {stamp} was never installed"
                );
            }
        })
    };

    for k in 1..=20i64 {
        installed.lock().unwrap().insert(k);
        // Both relations must move together: a single atomic
        // whole-catalog install, not two queued per-relation writes.
        let before = server.snapshot().version();
        let version = server
            .install_all(versioned_catalog(k))
            .expect("install failed");
        assert!(version > before, "install did not bump the version");
        assert!(server.snapshot().version() >= version);
    }

    client.join().expect("client panicked");
    let final_answer = server.query("pi[0](R)").unwrap();
    assert_eq!(final_answer, instance![[20]]);
    match Arc::try_unwrap(server) {
        Ok(server) => server.shutdown(),
        Err(_) => panic!("client still holds the server"),
    }
}
