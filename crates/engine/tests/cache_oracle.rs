//! The plan-cache differential oracle.
//!
//! A [`PlanCache`] hit must be *observationally invisible*: executing a
//! cached `Arc<Prepared>` gives exactly the answer a fresh
//! `Engine::prepare_schema` would, on every backend — instances,
//! c-tables, and pc-tables — across random queries and random
//! multi-relation schemas. On top of the differential sweep, two
//! deterministic regressions pin the cache's key discipline:
//!
//! * **cross-schema collision** — the same query text prepared under two
//!   schemas that declare different arities for the same name must yield
//!   two distinct entries (keying by text alone would serve an
//!   arity-mismatched plan, the latent bug this cache is built not to
//!   have);
//! * **LRU at capacity 1** — the degenerate cache still serves correct
//!   answers while evicting on every alternation, and never leaks alias
//!   entries past their evicted plan.
//!
//! Run counts are deliberately modest for CI; soak with
//! `PROPTEST_CASES=256 cargo test -p ipdb-engine --test cache_oracle`
//! (the vendored proptest honors the env override globally).

use std::sync::Arc;

use proptest::prelude::*;

use ipdb_engine::{parser, Catalog, Engine, PlanCache, Schema};
use ipdb_logic::Var;
use ipdb_prob::{FiniteSpace, PcTable, Rat};
use ipdb_rel::strategies::{arb_catalog_case, arb_instance};
use ipdb_rel::{instance, Value};
use ipdb_tables::strategies::arb_finite_ctable;
use ipdb_tables::CTable;

/// Pairs the schema's names with its generated relations.
fn catalog_of<T: Clone>(schema: &[(String, usize)], rels: [&T; 3]) -> Catalog<T> {
    schema
        .iter()
        .zip(rels)
        .map(|((n, _), r)| (n.clone(), r.clone()))
        .collect()
}

/// Uniform distributions over each variable's domain, making the
/// c-table a pc-table. Uniform masses depend only on the (shared)
/// domains, so tables drawing variables from one namespace stay
/// consistent — the catalog's shared-namespace contract.
fn uniform_pctable(t: &CTable) -> PcTable<Rat> {
    let dists: Vec<(Var, FiniteSpace<Value, Rat>)> = t
        .domains()
        .iter()
        .map(|(v, dom)| {
            let n = dom.len() as i128;
            let d = FiniteSpace::new(dom.iter().map(|val| (val.clone(), Rat::new(1, n))))
                .expect("uniform masses sum to 1");
            (*v, d)
        })
        .collect();
    PcTable::new(t.clone(), dists).expect("every variable has a distribution")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Instance backend: a cold miss, a warm hit, and a hit through the
    /// rendered (canonical) spelling all execute to exactly the fresh
    /// `prepare_schema` answer — and the warm calls return the *same*
    /// `Arc` without re-planning.
    #[test]
    fn cached_equals_fresh_on_instances(
        (schema, q, i0, i1, i2) in arb_catalog_case(2, 3, 3, |a| arb_instance(a, 4, 3).boxed())
    ) {
        let s = Schema::new(schema.clone()).unwrap();
        let engine = Engine::new();
        let fresh = engine.prepare_schema(&q, &s).unwrap();
        let cat = catalog_of(&schema, [&i0, &i1, &i2]);
        let expected = fresh.execute_catalog(&cat).unwrap();

        let cache = PlanCache::new(8);
        let cold = cache.prepare(&engine, &q, &s).unwrap();
        let warm = cache.prepare(&engine, &q, &s).unwrap();
        let by_text = cache.prepare_text(&engine, &parser::render(&q), &s).unwrap();
        prop_assert!(Arc::ptr_eq(&cold, &warm), "warm hit re-planned {}", q);
        prop_assert!(Arc::ptr_eq(&cold, &by_text), "canonical spelling missed {}", q);
        prop_assert_eq!(cache.misses(), 1);
        prop_assert_eq!(cache.hits(), 2);
        prop_assert_eq!(
            cold.execute_catalog(&cat).unwrap(),
            expected,
            "cached plan diverged from fresh prepare on {}", q
        );
    }

    /// The degenerate capacity-1 cache under a churning two-query
    /// workload: every answer still equals the fresh prepare, the cache
    /// never holds more than one entry, and each alternation is a miss.
    #[test]
    fn capacity_one_churn_stays_correct_on_instances(
        (schema, q, i0, i1, i2) in arb_catalog_case(2, 2, 3, |a| arb_instance(a, 4, 3).boxed())
    ) {
        let s = Schema::new(schema.clone()).unwrap();
        let engine = Engine::new();
        let cat = catalog_of(&schema, [&i0, &i1, &i2]);
        // A second query guaranteed distinct from `q` (it contains `q`
        // as a strict subterm, so the canonical texts differ).
        let other = ipdb_rel::Query::union(q.clone(), q.clone());
        let expect_q = engine.prepare_schema(&q, &s).unwrap().execute_catalog(&cat).unwrap();
        let expect_other =
            engine.prepare_schema(&other, &s).unwrap().execute_catalog(&cat).unwrap();

        let cache = PlanCache::new(1);
        for round in 0..3u64 {
            let a = cache.prepare(&engine, &q, &s).unwrap();
            let b = cache.prepare(&engine, &other, &s).unwrap();
            prop_assert!(cache.len() <= 1, "capacity-1 cache held {} entries", cache.len());
            prop_assert_eq!(cache.misses(), 2 * (round + 1), "alternation should evict");
            prop_assert_eq!(a.execute_catalog(&cat).unwrap(), expect_q.clone());
            prop_assert_eq!(b.execute_catalog(&cat).unwrap(), expect_other.clone());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// C-table backend: the cached plan's catalog answer is exactly the
    /// fresh prepare's (the executor is deterministic, so syntactic
    /// c-table equality is the right oracle).
    #[test]
    fn cached_equals_fresh_on_ctables(
        (schema, q, t0, t1, t2) in arb_catalog_case(2, 2, 2, |a| arb_finite_ctable(a, 2, 3, 2))
    ) {
        let s = Schema::new(schema.clone()).unwrap();
        let engine = Engine::new();
        let cat = catalog_of(&schema, [&t0, &t1, &t2]);
        let expected = engine.prepare_schema(&q, &s).unwrap().execute_catalog(&cat).unwrap();
        let cache = PlanCache::new(4);
        cache.prepare(&engine, &q, &s).unwrap();
        let warm = cache.prepare(&engine, &q, &s).unwrap();
        prop_assert_eq!(cache.hits(), 1);
        prop_assert_eq!(
            warm.execute_catalog(&cat).unwrap(),
            expected,
            "cached c-table plan diverged on {}", q
        );
    }

    /// Pc-table backend: same differential through the probabilistic
    /// catalog path (shared variable namespace, uniform distributions).
    #[test]
    fn cached_equals_fresh_on_pctables(
        (schema, q, t0, t1, t2) in arb_catalog_case(2, 2, 2, |a| arb_finite_ctable(a, 2, 2, 2))
    ) {
        let s = Schema::new(schema.clone()).unwrap();
        let engine = Engine::new();
        let cat: Catalog<PcTable<Rat>> = schema
            .iter()
            .zip([&t0, &t1, &t2])
            .map(|((n, _), t)| (n.clone(), uniform_pctable(t)))
            .collect();
        let expected = engine.prepare_schema(&q, &s).unwrap().execute_catalog(&cat).unwrap();
        let cache = PlanCache::new(4);
        cache.prepare(&engine, &q, &s).unwrap();
        let warm = cache.prepare(&engine, &q, &s).unwrap();
        prop_assert_eq!(cache.hits(), 1);
        prop_assert_eq!(
            warm.execute_catalog(&cat).unwrap(),
            expected,
            "cached pc-table plan diverged on {}", q
        );
    }
}

/// The cross-schema key-collision regression: `pi[1](R)` is a fine
/// query under `{R:2}` and an arity error under `{R:1}`. A cache keyed
/// by text alone would serve whichever prepared first — here the two
/// schemas get distinct entries, each executing correctly against its
/// own catalog.
#[test]
fn same_text_under_different_schemas_never_collides() {
    let engine = Engine::new();
    let cache = PlanCache::new(8);
    let wide = Schema::new([("R", 2)]).unwrap();
    let narrow = Schema::new([("R", 1)]).unwrap();

    let stmt_wide = cache.prepare_text(&engine, "pi[1](R)", &wide).unwrap();
    // Under the narrow schema the same text must *not* hit the wide
    // entry — it is an arity error, and the cache must surface it.
    assert!(cache.prepare_text(&engine, "pi[1](R)", &narrow).is_err());

    // A text valid under both schemas yields two distinct entries with
    // schema-appropriate answers.
    let all_wide = cache.prepare_text(&engine, "R", &wide).unwrap();
    let all_narrow = cache.prepare_text(&engine, "R", &narrow).unwrap();
    assert!(!Arc::ptr_eq(&all_wide, &all_narrow));
    let cat_wide: Catalog<_> = [("R", instance![[1, 2]])].into_iter().collect();
    let cat_narrow: Catalog<_> = [("R", instance![[7]])].into_iter().collect();
    assert_eq!(
        all_wide.execute_catalog(&cat_wide).unwrap(),
        instance![[1, 2]]
    );
    assert_eq!(
        all_narrow.execute_catalog(&cat_narrow).unwrap(),
        instance![[7]]
    );
    // Three distinct entries live in the cache: pi[1](R)@wide, R@wide,
    // R@narrow.
    assert_eq!(cache.len(), 3);
    assert_eq!(stmt_wide.input_arity(), None);
}

/// LRU at capacity 1, pinned deterministically: the second distinct
/// query evicts the first (so re-preparing the first misses again), and
/// non-canonical alias spellings die with their entry instead of
/// dangling.
#[test]
fn lru_capacity_one_evicts_and_drops_aliases() {
    let engine = Engine::new();
    let cache = PlanCache::new(1);
    let s = Schema::single(2);

    // A non-canonical spelling (extra whitespace) registers an alias.
    let a1 = cache.prepare_text(&engine, "pi[0]( V )", &s).unwrap();
    let a2 = cache.prepare_text(&engine, "pi[0](V)", &s).unwrap();
    assert!(
        Arc::ptr_eq(&a1, &a2),
        "alias should hit the canonical entry"
    );
    assert_eq!((cache.hits(), cache.misses()), (1, 1));

    // A second query evicts the first...
    cache.prepare_text(&engine, "sigma[#0=#1](V)", &s).unwrap();
    assert_eq!(cache.len(), 1);
    assert_eq!((cache.hits(), cache.misses()), (1, 2));

    // ...so both spellings of the first are cold again.
    let b1 = cache.prepare_text(&engine, "pi[0]( V )", &s).unwrap();
    assert_eq!((cache.hits(), cache.misses()), (1, 3));
    assert!(
        !Arc::ptr_eq(&a1, &b1),
        "evicted plan resurfaced from a stale alias"
    );
    assert_eq!(
        b1.execute(&instance![[4, 5], [6, 7]]).unwrap(),
        instance![[4], [6]]
    );
}
