//! Pipeline property tests.
//!
//! * the parser inverts the canonical renderer on arbitrary queries
//!   (`parse(render(q)) == q`);
//! * the optimizer is semantics-preserving on **all three backends**:
//!   for random queries and random small inputs, `optimize(q)` evaluates
//!   identically to `q` over conventional instances, c-tables (compared
//!   under every valuation of a finite domain), and pc-tables (compared
//!   as exact distributions).

use proptest::prelude::*;

use ipdb_engine::{optimize, optimize_plan, optimize_plan_stats, parser, Engine, Plan};
use ipdb_logic::{Valuation, Var};
use ipdb_prob::{FiniteSpace, PcTable, Rat};
use ipdb_rel::strategies::{arb_instance, arb_query};
use ipdb_rel::Value;
use ipdb_tables::strategies::arb_finite_ctable;
use ipdb_tables::CTable;

/// Every total valuation of the table's variables over their finite
/// domains (the c-table analogue of "all possible worlds").
fn all_valuations(t: &CTable) -> Vec<Valuation> {
    let mut acc = vec![Valuation::new()];
    for (v, dom) in t.domains() {
        let mut next = Vec::with_capacity(acc.len() * dom.len());
        for nu in &acc {
            for val in dom.iter() {
                let mut nu2 = nu.clone();
                nu2.bind(*v, val.clone());
                next.push(nu2);
            }
        }
        acc = next;
    }
    acc
}

/// Uniform distributions over each variable's domain, making the
/// c-table a pc-table.
fn uniform_pctable(t: &CTable) -> PcTable<Rat> {
    let dists: Vec<(Var, FiniteSpace<Value, Rat>)> = t
        .domains()
        .iter()
        .map(|(v, dom)| {
            let n = dom.len() as i128;
            let d = FiniteSpace::new(dom.iter().map(|val| (val.clone(), Rat::new(1, n))))
                .expect("uniform masses sum to 1");
            (*v, d)
        })
        .collect();
    PcTable::new(t.clone(), dists).expect("every variable has a distribution")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Acceptance criterion: the canonical surface syntax round-trips
    /// through the parser for arbitrary well-typed RA queries.
    #[test]
    fn parse_inverts_render(q in arb_query(2, 3, 3, 3)) {
        let text = parser::render(&q);
        prop_assert_eq!(parser::parse(&text).unwrap(), q);
    }

    /// Optimization preserves the query's output arity.
    #[test]
    fn optimize_preserves_arity(q in arb_query(2, 3, 3, 3)) {
        let o = optimize(&q, 2).unwrap();
        prop_assert_eq!(o.arity(2).unwrap(), q.arity(2).unwrap());
    }

    /// Acceptance criterion: the fixpoint loop genuinely converges
    /// within its `2·depth + 2` bound — so optimization is idempotent
    /// (`optimize_plan ∘ optimize_plan = optimize_plan`) and the stats
    /// report the convergence it certifies.
    #[test]
    fn optimize_plan_is_idempotent(q in arb_query(2, 3, 4, 3)) {
        let plan = Plan::from_query(&q, 2).unwrap();
        let (once, stats) = optimize_plan_stats(&plan);
        prop_assert!(
            stats.converged,
            "bound exhausted after {} passes on {}", stats.passes, q
        );
        prop_assert_eq!(optimize_plan(&once), once.clone());
        // A fixpoint certifies in exactly one (no-op) pass.
        let (_, again) = optimize_plan_stats(&once);
        prop_assert_eq!(again.passes, 1);
        prop_assert!(again.converged);
    }

    /// Instance backend: optimized and naive evaluation coincide.
    #[test]
    fn optimize_equivalent_on_instances(
        q in arb_query(2, 3, 3, 3),
        i in arb_instance(2, 4, 3),
    ) {
        let stmt = Engine::new().prepare(&q, 2).unwrap();
        prop_assert_eq!(stmt.execute(&i).unwrap(), stmt.execute_naive(&i).unwrap());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// C-table backend: the two plans agree worldwise — under every
    /// valuation of the (finite-domain) input table.
    #[test]
    fn optimize_equivalent_on_ctables(
        q in arb_query(2, 2, 3, 2),
        t in arb_finite_ctable(2, 3, 3, 2),
    ) {
        let stmt = Engine::new().prepare(&q, 2).unwrap();
        let naive = stmt.execute_naive(&t).unwrap();
        let optimized = stmt.execute(&t).unwrap();
        for nu in all_valuations(&t) {
            prop_assert_eq!(
                naive.apply_valuation(&nu).unwrap(),
                optimized.apply_valuation(&nu).unwrap(),
                "query {} under {}", q, nu
            );
        }
    }

    /// Pc-table backend: the two plans induce the same exact
    /// distribution over answer worlds.
    #[test]
    fn optimize_equivalent_on_pctables(
        q in arb_query(2, 2, 2, 2),
        t in arb_finite_ctable(2, 2, 2, 1),
    ) {
        let pc = uniform_pctable(&t);
        let stmt = Engine::new().prepare(&q, 2).unwrap();
        let naive = stmt.execute_naive(&pc).unwrap().mod_space().unwrap();
        let optimized = stmt.execute(&pc).unwrap().mod_space().unwrap();
        prop_assert!(
            naive.same_distribution(&optimized),
            "query {} produced different distributions", q
        );
    }
}
