//! Certain and possible answers of queries on c-tables.
//!
//! The classical use of incomplete databases (the paper's §1 motivation
//! via Orchestra): a query's *certain answers* hold in every possible
//! world, its *possible answers* in at least one. Both reduce, through
//! Theorem 4, to questions about the single c-table `q̄(T)` and are
//! decided exactly over the infinite domain by the active-domain +
//! fresh-constants slice (see `ipdb-tables::worlds`): a certain tuple
//! must survive *every* valuation, so tuples mentioning fresh constants
//! are never certain and the certain-answer set is ground over the
//! active constants.

use ipdb_rel::{Instance, Query};
use ipdb_tables::CTable;

use crate::error::CoreError;

/// The certain answers `⋂ { q(I) | I ∈ Mod(T) }`, computed via `q̄(T)`
/// and its decision slice.
pub fn certain_answers(t: &CTable, q: &Query) -> Result<Instance, CoreError> {
    let answered = t.eval_query(q)?;
    let slice = answered.decision_slice(&ipdb_rel::Domain::empty());
    Ok(answered.mod_over(&slice)?.certain_tuples())
}

/// The possible answers `⋃ { q(I) | I ∈ Mod(T) }` *restricted to the
/// decision slice*: every possible ground answer over the table's
/// active constants appears; answers that exist only by choosing fresh
/// domain values are represented up to renaming of the fresh constants.
pub fn possible_answers_over_slice(t: &CTable, q: &Query) -> Result<Instance, CoreError> {
    let answered = t.eval_query(q)?;
    let slice = answered.decision_slice(&ipdb_rel::Domain::empty());
    Ok(answered.mod_over(&slice)?.possible_tuples())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipdb_logic::{Condition, Var};
    use ipdb_rel::{instance, tuple, Domain, Pred};
    use ipdb_tables::{t_const, t_var};

    fn sample() -> CTable {
        let (x, y) = (Var(0), Var(1));
        CTable::builder(2)
            .row([t_const(1), t_const(2)], Condition::True)
            .row([t_const(3), t_var(x)], Condition::True)
            .row([t_var(y), t_const(4)], Condition::eq_vv(x, y))
            .build()
            .unwrap()
    }

    #[test]
    fn certain_answers_of_projection() {
        let t = sample();
        // π₁: (1) always; (3) always; (y) only when x=y.
        let q = Query::project(Query::Input, vec![0]);
        assert_eq!(certain_answers(&t, &q).unwrap(), instance![[1], [3]]);
    }

    #[test]
    fn certain_answers_of_selection() {
        let t = sample();
        // σ_{#1=3}: the (3, x) row survives with any x, so only its
        // first column is certain under projection; the full tuple
        // (3, x) is not certain for any particular x.
        let q = Query::select(Query::Input, Pred::eq_const(0, 3));
        let certain = certain_answers(&t, &q).unwrap();
        assert!(certain.is_empty());
        let possible = possible_answers_over_slice(&t, &q).unwrap();
        assert!(possible
            .iter()
            .all(|tup| tup[0] == 1i64.into() || tup[0] == 3i64.into()));
        assert!(possible.contains(&tuple![3, 2]));
    }

    #[test]
    fn tautological_condition_is_certain() {
        let x = Var(0);
        let t = CTable::builder(1)
            .row(
                [t_const(9)],
                Condition::Or(vec![Condition::eq_vc(x, 1), Condition::neq_vc(x, 1)]),
            )
            .build()
            .unwrap();
        assert_eq!(certain_answers(&t, &Query::Input).unwrap(), instance![[9]]);
    }

    #[test]
    fn certain_answers_ground_over_active_constants() {
        let t = sample();
        let q = Query::Input;
        let certain = certain_answers(&t, &q).unwrap();
        assert_eq!(certain, instance![[1, 2]]);
        let actives = t.active_constants();
        for tup in certain.iter() {
            for v in tup.iter() {
                assert!(actives.contains(v));
            }
        }
        let _ = Domain::empty(); // silence unused import in some cfgs
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use ipdb_rel::Domain;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Certain answers via `q̄` + decision slice agree with brute
        /// force over the worlds of a *larger* slice.
        #[test]
        fn certain_answers_match_brute_force(
            t in ipdb_tables::strategies::arb_ctable(1, 3, 2, 1),
            q in ipdb_rel::strategies::arb_query(1, 2, 2, 1)
        ) {
            let fast = certain_answers(&t, &q).unwrap();
            // Brute force: evaluate q worldwise over an enlarged slice.
            let slice = t
                .eval_query(&q)
                .unwrap()
                .decision_slice(&Domain::empty())
                .with_fresh_ints(2);
            let worlds = t.mod_over(&slice).unwrap();
            let brute = q.eval_idb(&worlds).unwrap().certain_tuples();
            prop_assert_eq!(fast, brute);
        }
    }
}
