//! # `ipdb-core` — the theory layer of Green & Tannen (EDBT 2006)
//!
//! The paper's theorems, as executable constructions over the substrate
//! crates:
//!
//! | module | paper artifact |
//! |---|---|
//! | [`ra_complete`] | Thm 1 (c-table → `q` with `q(Z_k) = Mod(T)`), Thm 2 (RA-completeness), Prop. 4 (`q(N) = Z_n`), Example 4 |
//! | [`finite_complete`] | Thm 3 (boolean c-tables are finitely complete), Example 5 (succinctness) |
//! | [`completion`] | Def. 8 + Thm 5 (RA-completion: Codd+SPJU, v-tables+SP), Thm 6 (finite completion ×4 systems), Thm 7 + Cor. 1 |
//! | [`nonclosure`] | Prop. 1 (non-closure witnesses, with machine-checked certificates) |
//! | [`translate`] | the `Condition ↔ Pred` bridge the constructions share |
//! | [`answers`] | certain/possible answers via `q̄` + decision slices |
//!
//! Probabilistic completeness and closure (Thms 8–9) live in
//! `ipdb-prob` ([`ipdb_prob::theorem8_table`],
//! [`ipdb_prob::PcTable::eval_query`]); this crate re-exports them for a
//! single façade.
//!
//! Every construction here returns both the constructed object *and* is
//! checked by tests (unit + property) for (a) semantic correctness —
//! `Mod` equality over decision slices — and (b) **fragment honesty**:
//! the query really lies in the fragment the theorem names.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod answers;
pub mod completion;
pub mod error;
pub mod finite_complete;
pub mod nonclosure;
pub mod ra_complete;
pub mod translate;

pub use error::CoreError;

// Probabilistic theory (Thms 8–9) re-exported for the façade.
pub use ipdb_prob::theorem8_table;
