//! Errors for the theory-layer constructions.

use std::fmt;

use ipdb_logic::LogicError;
use ipdb_rel::RelError;
use ipdb_tables::TableError;

/// Errors raised by the completeness/completion constructions.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// An underlying relational error.
    Rel(RelError),
    /// An underlying table error.
    Table(TableError),
    /// An underlying logic error.
    Logic(LogicError),
    /// An underlying probabilistic error.
    Prob(ipdb_prob::ProbError),
    /// The target i-database cannot be represented (e.g. it has no
    /// worlds at all; `Mod` of any table is non-empty).
    Unrepresentable(String),
    /// Theorem 7 requires the host table to have at least as many worlds
    /// as the target.
    HostTooSmall {
        /// Worlds needed (`|target|`).
        needed: usize,
        /// Worlds available (`|Mod(host)|`).
        available: usize,
    },
    /// The `R_sets`+PU construction (Thm 6.3) pads worlds to a common
    /// width with their own tuples, so every world must be non-empty
    /// unless the empty world itself is in the target (handled via a
    /// `?`-block).
    NeedNonEmptyWorlds,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Rel(e) => write!(f, "{e}"),
            CoreError::Table(e) => write!(f, "{e}"),
            CoreError::Logic(e) => write!(f, "{e}"),
            CoreError::Prob(e) => write!(f, "{e}"),
            CoreError::Unrepresentable(s) => write!(f, "unrepresentable: {s}"),
            CoreError::HostTooSmall { needed, available } => write!(
                f,
                "Thm 7 host has {available} worlds but the target needs {needed}"
            ),
            CoreError::NeedNonEmptyWorlds => write!(
                f,
                "R_sets+PU construction pads worlds with their own tuples; a non-empty \
                 target world is required (the empty world is handled via a ?-block)"
            ),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<RelError> for CoreError {
    fn from(e: RelError) -> Self {
        CoreError::Rel(e)
    }
}

impl From<TableError> for CoreError {
    fn from(e: TableError) -> Self {
        CoreError::Table(e)
    }
}

impl From<LogicError> for CoreError {
    fn from(e: LogicError) -> Self {
        CoreError::Logic(e)
    }
}

impl From<ipdb_prob::ProbError> for CoreError {
    fn from(e: ipdb_prob::ProbError) -> Self {
        CoreError::Prob(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_froms() {
        let e: CoreError = RelError::RaggedLiteral.into();
        assert!(matches!(e, CoreError::Rel(_)));
        let e: CoreError = TableError::EmptyOrSet.into();
        assert!(matches!(e, CoreError::Table(_)));
        assert!(CoreError::HostTooSmall {
            needed: 4,
            available: 2
        }
        .to_string()
        .contains("4"));
    }
}
