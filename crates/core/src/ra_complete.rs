//! RA-definability and RA-completeness (paper §3, Thms 1–2, Prop. 4,
//! Example 4).
//!
//! Definition 3: an incomplete database is *RA-definable* if it is
//! `q(Mod(Z_k))` for some RA query `q`, where `Z_k` is the single-row
//! Codd table of `k` distinct variables. Theorem 1 proves every c-table
//! representable i-database is RA-definable — constructively:
//! [`theorem1_query`] builds the (SPJU) query from the table. Theorem 2
//! (the converse: c-tables are RA-complete) is witnessed by the c-table
//! algebra itself: `q̄(Z_k)` *is* a c-table representing `q(Mod(Z_k))`
//! — see [`theorem2_table`].

use std::collections::BTreeMap;

use ipdb_logic::{Term, Var, VarGen};
use ipdb_rel::{IDatabase, Instance, Pred, Query, Tuple};
use ipdb_tables::CTable;

use crate::error::CoreError;
use crate::translate::condition_to_pred;

/// The variable order Thm 1 uses: the table's variables ascending, so
/// `x_j` lives in column `j` of `Z_k`.
pub fn z_k_positions(t: &CTable) -> BTreeMap<Var, usize> {
    t.vars()
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, i))
        .collect()
}

/// **Theorem 1**: from a c-table `T` (arity `n`, variables `x₁…x_k`),
/// the SPJU query `q` with `q(Mod(Z_k)) = Mod(T)`:
///
/// `q := ⋃_{t ∈ T} π_{1…n}( σ_{ψ_t}( C₁ × ⋯ × C_{n+m_t} ) )`
///
/// where `Cᵢ` is the singleton `{c}` for a constant entry and
/// `π_j(Z_k)` for a variable entry, the trailing factors project the
/// condition-only variables of the row, and `ψ_t` is `ϕ_t` with
/// variables replaced by their column indexes.
///
/// Returns the query and `k` (the arity of `Z_k`).
pub fn theorem1_query(t: &CTable) -> Result<(Query, usize), CoreError> {
    let pos = z_k_positions(t);
    let k = pos.len();
    let n = t.arity();
    let mut parts: Vec<Query> = Vec::with_capacity(t.len());
    for row in t.rows() {
        // Product factors C₁ … C_n: one per tuple entry.
        let mut factors: Vec<Query> = Vec::with_capacity(n + k);
        // Column where each variable lands in this row's product (first
        // occurrence wins; later occurrences are fresh copies of the same
        // single-tuple projection, hence automatically equal).
        let mut landed: BTreeMap<Var, usize> = BTreeMap::new();
        for (i, entry) in row.tuple.iter().enumerate() {
            match entry {
                Term::Const(c) => {
                    factors.push(Query::Lit(Instance::singleton(Tuple::new([c.clone()]))))
                }
                Term::Var(x) => {
                    factors.push(Query::project(Query::Input, vec![pos[x]]));
                    landed.entry(*x).or_insert(i);
                }
            }
        }
        // Condition-only variables get trailing columns.
        let mut next_col = n;
        let mut cond_vars = row.cond.vars();
        for v in row.tuple.iter().filter_map(Term::as_var) {
            cond_vars.remove(&v);
        }
        for x in cond_vars {
            factors.push(Query::project(Query::Input, vec![pos[&x]]));
            landed.insert(x, next_col);
            next_col += 1;
        }
        let product = Query::product_all(factors)
            .unwrap_or_else(|| Query::Lit(Instance::singleton(Tuple::empty())));
        let psi = condition_to_pred(&row.cond, &landed)?;
        parts.push(Query::project(
            Query::select(product, psi),
            (0..n).collect(),
        ));
    }
    let q = Query::union_all(parts).unwrap_or_else(|| Query::Lit(Instance::empty(n)));
    Ok((q, k))
}

/// **Theorem 2** (RA-completeness of c-tables): for any query `q`, the
/// c-table `q̄(Z_k)` represents the RA-definable i-database
/// `q(Mod(Z_k))`.
pub fn theorem2_table(q: &Query, k: usize, gen: &mut VarGen) -> Result<CTable, CoreError> {
    let z = CTable::z_k(k, gen);
    Ok(z.eval_query(q)?)
}

/// **Proposition 4**: a query `q` with `q(N) = Z_n`, where `N` is the
/// zero-information database. With `ℓ = (1,…,n)`:
///
/// `q'(V) := V − π_ℓ(σ_{ℓ≠r}(V × V))` (yields `V` when `|V| = 1`, else ∅)
/// `q(V)  := q'(V) ∪ ({t} − π_ℓ({t} × q'(V)))`
///
/// `t` is an arbitrary tuple of arity `n` supplied by the caller.
pub fn prop4_query(n: usize, t: &Tuple) -> Result<Query, CoreError> {
    if t.arity() != n {
        return Err(CoreError::Rel(ipdb_rel::RelError::ArityMismatch {
            expected: n,
            got: t.arity(),
        }));
    }
    // ℓ ≠ r : 1≠n+1 ∨ … ∨ n≠2n (0-based: i ≠ n+i).
    let diff_pred = Pred::or((0..n).map(|i| Pred::neq_cols(i, n + i)));
    let q_prime = Query::diff(
        Query::Input,
        Query::project(
            Query::select(Query::product(Query::Input, Query::Input), diff_pred),
            (0..n).collect(),
        ),
    );
    let t_lit = Query::Lit(Instance::singleton(t.clone()));
    // {t} − π_ℓ({t} × q'(V)) : {t} when q'(V) = ∅, else ∅.
    let fallback = Query::diff(
        t_lit.clone(),
        Query::project(Query::product(t_lit, q_prime.clone()), (0..n).collect()),
    );
    Ok(Query::union(q_prime, fallback))
}

/// The paper's **Example 4** query, transcribed verbatim: the
/// RA-definition of Example 2's c-table `S` from `Z₃`,
///
/// `q(V) := π₁₂₃({1}×{2}×V) ∪ π₁₂₃(σ_{2=3,4≠'2'}({3}×V))
///        ∪ π₅₁₂(σ_{3≠'1',3≠4}({4}×{5}×V))`
///
/// (variable order `x, y, z` in columns 1, 2, 3 of `Z₃`).
pub fn example4_query() -> Query {
    let one = Query::singleton([1i64]);
    let two = Query::singleton([2i64]);
    let three = Query::singleton([3i64]);
    let four = Query::singleton([4i64]);
    let five = Query::singleton([5i64]);
    // π₁₂₃({1}×{2}×V): columns are (1, 2, x, y, z); keep (1, 2, x).
    let part1 = Query::project(
        Query::product(Query::product(one, two), Query::Input),
        vec![0, 1, 2],
    );
    // π₁₂₃(σ_{2=3,4≠'2'}({3}×V)): columns (3, x, y, z);
    // 2=3 is x=y (cols 1,2), 4≠'2' is z≠2 (col 3).
    let part2 = Query::project(
        Query::select(
            Query::product(three, Query::Input),
            Pred::and([Pred::eq_cols(1, 2), Pred::neq_const(3, 2)]),
        ),
        vec![0, 1, 2],
    );
    // π₅₁₂(σ_{3≠'1',3≠4}({4}×{5}×V)): columns (4, 5, x, y, z);
    // 3≠'1' is x≠1 (col 2), 3≠4 is x≠y (cols 2,3); π₅₁₂ keeps (z, 4, 5).
    // The row condition in Example 2 is the *disjunction* x≠1 ∨ x≠y, so
    // the selection list here is disjunctive.
    let part3 = Query::project(
        Query::select(
            Query::product(Query::product(four, five), Query::Input),
            Pred::or([Pred::neq_const(2, 1), Pred::neq_cols(2, 3)]),
        ),
        vec![4, 0, 1],
    );
    Query::union_all([part1, part2, part3]).expect("three parts")
}

/// Checks `q(Mod(Z_k)) = Mod(T)` over a finite domain slice (both sides
/// computed by enumeration).
pub fn check_theorem1_on_slice(
    t: &CTable,
    q: &Query,
    k: usize,
    slice: &ipdb_rel::Domain,
) -> Result<bool, CoreError> {
    let z_worlds = IDatabase::z_k_over(slice, k);
    let lhs = q.eval_idb(&z_worlds)?;
    let rhs = t.mod_over(slice)?;
    Ok(lhs == rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipdb_logic::Condition;
    use ipdb_rel::{Domain, Fragment};
    use ipdb_tables::{t_const, t_var};

    /// Example 2's c-table S with x, y, z = Var(0), Var(1), Var(2).
    fn example2() -> CTable {
        let (x, y, z) = (Var(0), Var(1), Var(2));
        CTable::builder(3)
            .row([t_const(1), t_const(2), t_var(x)], Condition::True)
            .row(
                [t_const(3), t_var(x), t_var(y)],
                Condition::and([Condition::eq_vv(x, y), Condition::neq_vc(z, 2)]),
            )
            .row(
                [t_var(z), t_const(4), t_const(5)],
                Condition::or([Condition::neq_vc(x, 1), Condition::neq_vv(x, y)]),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn theorem1_on_example2() {
        let s = example2();
        let (q, k) = theorem1_query(&s).unwrap();
        assert_eq!(k, 3);
        assert!(Fragment::SPJU.admits_query(&q, k).unwrap());
        for slice in [Domain::ints(1..=3), Domain::new([1i64, 2, 5, 77])] {
            assert!(check_theorem1_on_slice(&s, &q, k, &slice).unwrap());
        }
    }

    #[test]
    fn theorem1_query_matches_qbar_on_zk() {
        // The proof's final step: q̄(Z_k) ≡ T.
        let s = example2();
        let (q, k) = theorem1_query(&s).unwrap();
        let mut gen = VarGen::avoiding(s.vars());
        let qbar_z = theorem2_table(&q, k, &mut gen).unwrap();
        assert!(qbar_z.equivalent_to(&s).unwrap());
    }

    #[test]
    fn theorem1_handles_repeated_variables() {
        // Row (x, x): both occurrences must be forced equal.
        let x = Var(0);
        let t = CTable::builder(2)
            .row([t_var(x), t_var(x)], Condition::True)
            .build()
            .unwrap();
        let (q, k) = theorem1_query(&t).unwrap();
        assert_eq!(k, 1);
        let slice = Domain::ints(1..=3);
        assert!(check_theorem1_on_slice(&t, &q, k, &slice).unwrap());
    }

    #[test]
    fn theorem1_handles_condition_only_variables() {
        // Row (7) under condition y ≠ 1 — y never appears in a tuple.
        let y = Var(0);
        let t = CTable::builder(1)
            .row([t_const(7)], Condition::neq_vc(y, 1))
            .build()
            .unwrap();
        let (q, k) = theorem1_query(&t).unwrap();
        assert_eq!(k, 1);
        let slice = Domain::ints(1..=3);
        assert!(check_theorem1_on_slice(&t, &q, k, &slice).unwrap());
    }

    #[test]
    fn theorem1_on_empty_table() {
        let t = CTable::new(2, vec![]).unwrap();
        let (q, k) = theorem1_query(&t).unwrap();
        assert_eq!(k, 0);
        let slice = Domain::ints(1..=2);
        assert!(check_theorem1_on_slice(&t, &q, k, &slice).unwrap());
    }

    #[test]
    fn example4_verbatim_query_defines_example2() {
        let s = example2();
        let q = example4_query();
        assert!(Fragment::SPJU.admits_query(&q, 3).unwrap());
        for slice in [Domain::ints(1..=3), Domain::new([1i64, 2, 4, 77])] {
            assert!(check_theorem1_on_slice(&s, &q, 3, &slice).unwrap());
        }
    }

    #[test]
    fn prop4_yields_z_n() {
        let n = 2;
        let t = Tuple::new([1i64, 1]);
        let q = prop4_query(n, &t).unwrap();
        let dom = Domain::ints(1..=2);
        // Finite slice of N: instances with ≤ 2 tuples.
        let n_slice = IDatabase::all_instances_over(&dom, n, 2);
        let image = q.eval_idb(&n_slice).unwrap();
        assert_eq!(image, IDatabase::z_k_over(&dom, n));
    }

    #[test]
    fn prop4_arity_checked() {
        assert!(prop4_query(2, &Tuple::new([1i64])).is_err());
    }

    #[test]
    fn prop4_behaviour_by_cardinality() {
        let n = 1;
        let t = Tuple::new([9i64]);
        let q = prop4_query(n, &t).unwrap();
        // Empty input → {t}.
        assert_eq!(
            q.eval(&Instance::empty(1)).unwrap(),
            Instance::singleton(t.clone())
        );
        // Singleton input → itself.
        let single = Instance::singleton(Tuple::new([4i64]));
        assert_eq!(q.eval(&single).unwrap(), single);
        // Two-tuple input → {t}.
        let double = ipdb_rel::instance![[1], [2]];
        assert_eq!(q.eval(&double).unwrap(), Instance::singleton(t));
    }
}
