//! Finite completeness (paper §3, Thm 3, Example 5).
//!
//! Theorem 3: boolean c-tables represent every finite incomplete
//! database. [`theorem3_table`] is the proof's construction — index the
//! worlds in binary over `ℓ = ⌈lg m⌉` boolean variables; world `i < m`
//! gets the code of `i−1`; the last world absorbs all remaining codes.
//!
//! Example 5 quantifies the price: the finite c-table
//! `{(x₁,…,x_m : true)}` with `dom(xᵢ) = {1..n}` has `m` cells, while
//! the equivalent boolean c-table has `nᵐ` rows.
//! [`example5_finite_ctable`] and the Thm 3 construction reproduce the
//! pair; `ipdb-bench` measures the blow-up.

use ipdb_logic::{Condition, Var, VarGen};
use ipdb_rel::{Domain, IDatabase};
use ipdb_tables::{BooleanCTable, CTable};

use crate::error::CoreError;

/// `⌈lg m⌉` (0 for `m ≤ 1`).
fn ceil_log2(m: usize) -> u32 {
    if m <= 1 {
        0
    } else {
        (m - 1).ilog2() + 1
    }
}

/// The binary-code condition `ϕ_c` over `vars`: bit `j` of `c` set →
/// `x_j`, clear → `¬x_j`.
fn code_condition(c: usize, vars: &[Var]) -> Condition {
    Condition::and(vars.iter().enumerate().map(|(j, v)| {
        if (c >> j) & 1 == 1 {
            Condition::bvar(*v)
        } else {
            Condition::nbvar(*v)
        }
    }))
}

/// **Theorem 3**: a boolean c-table `T` with `Mod(T)` equal to the given
/// finite i-database.
///
/// Errors when the target has no worlds (no table has empty `Mod`).
pub fn theorem3_table(target: &IDatabase, gen: &mut VarGen) -> Result<BooleanCTable, CoreError> {
    let m = target.len();
    if m == 0 {
        return Err(CoreError::Unrepresentable(
            "an i-database with no worlds has no representation".into(),
        ));
    }
    let ell = ceil_log2(m);
    let vars = gen.fresh_n(ell as usize);
    let mut table = BooleanCTable::new(target.arity());
    for (i, world) in target.iter().enumerate() {
        let cond = if i + 1 < m {
            code_condition(i, &vars)
        } else {
            // Last world: all codes from m−1 to 2^ℓ − 1.
            Condition::or(((m - 1)..(1usize << ell)).map(|c| code_condition(c, &vars)))
        };
        for t in world.iter() {
            table
                .push(t.clone(), cond.clone())
                .map_err(CoreError::Table)?;
        }
    }
    Ok(table)
}

/// **Example 5**, symbolic side: the finite c-table
/// `{(x₁,…,x_m : true)}` with `dom(xᵢ) = {1,…,n}` — `m` table cells
/// representing `nᵐ` worlds.
pub fn example5_finite_ctable(m: usize, n: i64, gen: &mut VarGen) -> CTable {
    let vars = gen.fresh_n(m);
    let mut builder = CTable::builder(m).row(
        vars.iter().map(|v| ipdb_logic::Term::Var(*v)),
        Condition::True,
    );
    for v in vars {
        builder = builder.domain(v, Domain::ints(1..=n));
    }
    builder.build().expect("valid by construction")
}

/// **Example 5**, explicit side: the equivalent boolean c-table obtained
/// by applying Thm 3 to `Mod` of the finite c-table. Returns the pair
/// `(rows_of_boolean_table, m_cells_of_finite_table)` along with the
/// table for inspection.
pub fn example5_boolean_equivalent(
    m: usize,
    n: i64,
    gen: &mut VarGen,
) -> Result<BooleanCTable, CoreError> {
    let finite = example5_finite_ctable(m, n, gen);
    let worlds = finite.mod_finite().map_err(CoreError::Table)?;
    theorem3_table(&worlds, gen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipdb_rel::instance;
    use ipdb_tables::RepresentationSystem;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
    }

    #[test]
    fn theorem3_small_database() {
        let target =
            IDatabase::from_instances(1, [instance![[1]], instance![[2], [3]], instance![[4]]])
                .unwrap();
        let t = theorem3_table(&target, &mut VarGen::new()).unwrap();
        assert_eq!(t.worlds().unwrap(), target);
        // 3 worlds → 2 boolean variables.
        assert_eq!(t.vars().len(), 2);
    }

    #[test]
    fn theorem3_single_world() {
        let target = IDatabase::single(instance![[1, 2]]);
        let t = theorem3_table(&target, &mut VarGen::new()).unwrap();
        assert_eq!(t.worlds().unwrap(), target);
        assert!(t.vars().is_empty());
    }

    #[test]
    fn theorem3_power_of_two_worlds() {
        let target = IDatabase::from_instances(
            1,
            [
                instance![[1]],
                instance![[2]],
                instance![[3]],
                instance![[4]],
            ],
        )
        .unwrap();
        let t = theorem3_table(&target, &mut VarGen::new()).unwrap();
        assert_eq!(t.worlds().unwrap(), target);
        assert_eq!(t.vars().len(), 2);
    }

    #[test]
    fn theorem3_with_empty_world() {
        let target =
            IDatabase::from_instances(1, [ipdb_rel::Instance::empty(1), instance![[5]]]).unwrap();
        let t = theorem3_table(&target, &mut VarGen::new()).unwrap();
        assert_eq!(t.worlds().unwrap(), target);
    }

    #[test]
    fn theorem3_rejects_empty_target() {
        let target = IDatabase::empty(1);
        assert!(matches!(
            theorem3_table(&target, &mut VarGen::new()),
            Err(CoreError::Unrepresentable(_))
        ));
    }

    #[test]
    fn example5_pair_equivalence_and_sizes() {
        let (m, n) = (3, 2);
        let mut gen = VarGen::new();
        let finite = example5_finite_ctable(m, n, &mut gen);
        assert_eq!(finite.len(), 1);
        assert_eq!(finite.arity(), m);
        let worlds = finite.mod_finite().unwrap();
        assert_eq!(worlds.len(), (n as usize).pow(m as u32));
        let boolean = example5_boolean_equivalent(m, n, &mut gen).unwrap();
        assert_eq!(boolean.worlds().unwrap(), worlds);
        // The blow-up the paper states: nᵐ rows (one per world here,
        // since each world is a single tuple).
        assert_eq!(boolean.len(), (n as usize).pow(m as u32));
    }
}
