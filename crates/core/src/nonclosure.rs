//! Non-closure witnesses (paper Proposition 1, from \[20\] and \[29\]).
//!
//! "Codd tables and v-tables are not closed under e.g. selection. Or-set
//! tables and finite v-tables are also not closed under e.g. selection.
//! `?`-tables, `R_sets`, and `R_⊕≡` are not closed under e.g. join."
//!
//! Each witness here is a concrete `(table, query)` pair together with a
//! machine-checked *certificate* that no table of the weaker system
//! represents `q(Mod(T))`. The certificates rest on two structural
//! lemmas, both enforced by the code rather than assumed:
//!
//! * **Emptiness lemma** — for v-tables, Codd tables, or-set tables, and
//!   finite v-tables, `∅ ∈ Mod(T)` iff `T` has no rows (every row
//!   instantiates under every valuation). Hence any target containing
//!   the empty world *and* a non-empty world is unrepresentable.
//! * **Singleton lemma** — for `R_sets` whose target contains `∅`:
//!   every block must be optional (a non-`?` block always contributes a
//!   tuple), and then each block tuple alone is a world; so every world
//!   must consist of tuples `t` with `{t}` in the target. A target
//!   violating that is unrepresentable.
//!
//! For `?`-tables the representation question is *decided exactly*
//! (`Mod` of a `?`-table is the interval `{R ∪ S | S ⊆ O}`), and for
//! `R_⊕≡` a bounded exhaustive search over candidate tables provides the
//! certificate (bound documented at [`rxor_representable_bounded`]).

use std::collections::BTreeSet;

use ipdb_rel::{IDatabase, Instance, Pred, Query, Tuple};
use ipdb_tables::{QTable, RConstraint, RXorEquiv, RepresentationSystem};

use crate::error::CoreError;

// ---------------------------------------------------------------------
// Decision procedures / certificates.
// ---------------------------------------------------------------------

/// Exact decision: is the finite i-database the `Mod` of some
/// `?`-table? If so, returns one.
///
/// A `?`-table with required set `R` and optional set `O` has
/// `Mod = {R ∪ S | S ⊆ O}`; conversely such an interval determines
/// `R = ⋂ worlds` and `O = ⋃ worlds − R`, so representability is the
/// single equality below.
pub fn qtable_representing(target: &IDatabase) -> Option<QTable> {
    if target.is_empty() {
        return None;
    }
    let required = target.certain_tuples();
    let all = target.possible_tuples();
    let optional = all.difference(&required).expect("same arity");
    // Candidate table.
    let mut t = QTable::new(target.arity());
    for tup in required.iter() {
        t.push(tup.clone(), false).expect("arity");
    }
    for tup in optional.iter() {
        t.push(tup.clone(), true).expect("arity");
    }
    let worlds = t.worlds().expect("enumerable");
    if &worlds == target {
        Some(t)
    } else {
        None
    }
}

/// The emptiness-lemma certificate: a target containing both the empty
/// world and a non-empty world is representable by **no** v-table, Codd
/// table, or-set table, or finite v-table.
///
/// (Rows of those systems have no conditions: every valuation
/// instantiates every row, so `∅ ∈ Mod(T)` forces zero rows, forcing
/// `Mod(T) = {∅}`.)
pub fn unrepresentable_by_unconditional_tables(target: &IDatabase) -> bool {
    let has_empty = target.iter().any(Instance::is_empty);
    let has_nonempty = target.iter().any(|w| !w.is_empty());
    has_empty && has_nonempty
}

/// The singleton-lemma certificate for `R_sets` targets containing `∅`:
/// returns `true` (unrepresentable) when some world contains a tuple `t`
/// with `{t}` not in the target.
pub fn rsets_unrepresentable_via_singletons(target: &IDatabase) -> bool {
    if !target.iter().any(Instance::is_empty) {
        return false; // lemma only applies with ∅ in the target
    }
    let singleton_ok: BTreeSet<&Tuple> = target
        .iter()
        .filter(|w| w.len() == 1)
        .flat_map(|w| w.iter())
        .collect();
    target
        .iter()
        .flat_map(|w| w.iter())
        .any(|t| !singleton_ok.contains(t))
}

/// Bounded exhaustive search for an `R_⊕≡` table with the given `Mod`.
///
/// Candidates: tuple multisets drawn from the target's possible tuples
/// with multiplicity ≤ 2 and total size ≤ `max_tuples`, under every
/// assignment of `{none, ⊕, ≡}` to each tuple pair. Returns a witness
/// table if one exists within the bound.
///
/// Bound discussion: every tuple of a candidate that is *present in some
/// world* must come from the target's possible tuples; the largest world
/// forces `max_tuples ≥` its cardinality. Tables exceeding the bound can
/// only differ by never-present padding tuples, which require extra
/// constraints to silence — the search is a certificate for the bound,
/// which the Prop. 1 witnesses keep tiny.
pub fn rxor_representable_bounded(
    target: &IDatabase,
    max_tuples: usize,
) -> Result<Option<RXorEquiv>, CoreError> {
    let pool: Vec<Tuple> = target.possible_tuples().iter().cloned().collect();
    // Multisets over the pool with multiplicity ≤ 2, size ≤ max_tuples.
    let mut counts = vec![0usize; pool.len()];
    let mut stack = Vec::new();
    collect_multisets(&pool, 0, max_tuples, &mut counts, &mut stack);
    for multiset in stack {
        let m = multiset.len();
        if m > 12 {
            continue; // keep the constraint search tractable
        }
        // All pairs, each constrained by none/xor/equiv.
        let pairs: Vec<(usize, usize)> = (0..m)
            .flat_map(|i| ((i + 1)..m).map(move |j| (i, j)))
            .collect();
        let n_assign = 3usize.pow(pairs.len() as u32);
        for mask in 0..n_assign {
            let mut constraints = Vec::new();
            let mut acc = mask;
            for &(i, j) in &pairs {
                match acc % 3 {
                    0 => {}
                    1 => constraints.push(RConstraint::Xor(i, j)),
                    2 => constraints.push(RConstraint::Equiv(i, j)),
                    _ => unreachable!(),
                }
                acc /= 3;
            }
            let cand = RXorEquiv::new(target.arity(), multiset.clone(), constraints)
                .map_err(CoreError::Table)?;
            if &cand.worlds().map_err(CoreError::Table)? == target {
                return Ok(Some(cand));
            }
        }
    }
    Ok(None)
}

fn collect_multisets(
    pool: &[Tuple],
    idx: usize,
    budget: usize,
    counts: &mut Vec<usize>,
    out: &mut Vec<Vec<Tuple>>,
) {
    if idx == pool.len() {
        let mut ms = Vec::new();
        for (i, &c) in counts.iter().enumerate() {
            for _ in 0..c {
                ms.push(pool[i].clone());
            }
        }
        out.push(ms);
        return;
    }
    for c in 0..=2usize.min(budget) {
        counts[idx] = c;
        collect_multisets(pool, idx + 1, budget - c, counts, out);
    }
    counts[idx] = 0;
}

// ---------------------------------------------------------------------
// The Prop. 1 witnesses.
// ---------------------------------------------------------------------

/// A non-closure witness: a weaker-system table (described by its
/// worlds), a query, and the resulting target worlds that escape the
/// system.
#[derive(Debug, Clone)]
pub struct Witness {
    /// The system the witness escapes.
    pub system: &'static str,
    /// The query applied.
    pub query: Query,
    /// `Mod` of the source table (over the relevant finite slice).
    pub source_worlds: IDatabase,
    /// `q(Mod)` — the escaping target.
    pub target: IDatabase,
}

/// Prop. 1, "or-set tables / finite v-tables / Codd tables / v-tables
/// are not closed under selection": the single-or-set table
/// `{(〈1,2〉)}` under `σ_{#1=1}` yields `{∅, {(1)}}`, which contains the
/// empty and a non-empty world — unrepresentable by any unconditional-
/// row system (emptiness lemma).
pub fn selection_witness() -> Result<Witness, CoreError> {
    let source =
        IDatabase::from_instances(1, [ipdb_rel::instance![[1]], ipdb_rel::instance![[2]]])?;
    let q = Query::select(Query::Input, Pred::eq_const(0, 1));
    let target = q.eval_idb(&source)?;
    debug_assert!(unrepresentable_by_unconditional_tables(&target));
    Ok(Witness {
        system: "or-set / finite-v / Codd / v-tables (selection)",
        query: q,
        source_worlds: source,
        target,
    })
}

/// Prop. 1, "`?`-tables are not closed under join": the `?`-table
/// `{(1,2)?, (3,4)?}` under `π₁(V) × π₂(V)` produces correlated tuples
/// (`(1,4)` exists only when both originals do), escaping the
/// independent-tuple structure — certified by the exact `?`-table
/// decision procedure.
pub fn qtable_join_witness() -> Result<Witness, CoreError> {
    let source_table = QTable::from_rows(
        2,
        [(Tuple::new([1i64, 2]), true), (Tuple::new([3i64, 4]), true)],
    )
    .map_err(CoreError::Table)?;
    let source = source_table.worlds().map_err(CoreError::Table)?;
    let q = Query::product(
        Query::project(Query::Input, vec![0]),
        Query::project(Query::Input, vec![1]),
    );
    let target = q.eval_idb(&source)?;
    debug_assert!(qtable_representing(&target).is_none());
    Ok(Witness {
        system: "?-tables (join)",
        query: q,
        source_worlds: source,
        target,
    })
}

/// Prop. 1, "`R_sets` is not closed under join": same query over the
/// `R_sets` reading of the `?`-table above; the target contains `∅` and
/// the tuple `(1,4)` whose singleton is not a world — the singleton
/// lemma certifies unrepresentability.
pub fn rsets_join_witness() -> Result<Witness, CoreError> {
    let w = qtable_join_witness()?;
    debug_assert!(rsets_unrepresentable_via_singletons(&w.target));
    Ok(Witness {
        system: "R_sets (join)",
        ..w
    })
}

/// Prop. 1, "`R_⊕≡` is not closed under join": same target; a bounded
/// exhaustive search over `R_⊕≡` candidates (multiplicity ≤ 2 over the
/// possible tuples) finds no representation.
pub fn rxor_join_witness(max_tuples: usize) -> Result<Witness, CoreError> {
    let w = qtable_join_witness()?;
    if rxor_representable_bounded(&w.target, max_tuples)?.is_some() {
        return Err(CoreError::Unrepresentable(
            "unexpected: R⊕≡ represented the join witness".into(),
        ));
    }
    Ok(Witness {
        system: "R_⊕≡ (join)",
        ..w
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipdb_rel::instance;

    #[test]
    fn qtable_decision_procedure() {
        // Representable: independent interval.
        let ok = IDatabase::from_instances(1, [instance![[1]], instance![[1], [2]]]).unwrap();
        let t = qtable_representing(&ok).unwrap();
        assert_eq!(t.worlds().unwrap(), ok);
        // Unrepresentable: correlated pair.
        let bad = IDatabase::from_instances(1, [Instance::empty(1), instance![[1], [2]]]).unwrap();
        assert!(qtable_representing(&bad).is_none());
    }

    #[test]
    fn selection_witness_escapes_unconditional_tables() {
        let w = selection_witness().unwrap();
        assert!(unrepresentable_by_unconditional_tables(&w.target));
        assert_eq!(w.target.len(), 2);
        assert!(w.target.contains(&Instance::empty(1)));
        assert!(w.target.contains(&instance![[1]]));
    }

    #[test]
    fn join_witness_escapes_qtables() {
        let w = qtable_join_witness().unwrap();
        // Worlds: ∅, {(1,2)}, {(3,4)}, {(1,2),(1,4),(3,2),(3,4)}.
        assert_eq!(w.target.len(), 4);
        assert!(qtable_representing(&w.target).is_none());
        // ... while the source itself *is* a ?-table.
        assert!(qtable_representing(&w.source_worlds).is_some());
    }

    #[test]
    fn join_witness_escapes_rsets() {
        let w = rsets_join_witness().unwrap();
        assert!(rsets_unrepresentable_via_singletons(&w.target));
    }

    #[test]
    fn singleton_lemma_is_not_vacuous() {
        // An R_sets-representable target with ∅ passes the lemma.
        let ok = IDatabase::from_instances(1, [Instance::empty(1), instance![[1]], instance![[2]]])
            .unwrap();
        assert!(!rsets_unrepresentable_via_singletons(&ok));
    }

    #[test]
    fn rxor_bounded_search_finds_representations_when_they_exist() {
        // {∅, {(1),(2)}} is R⊕≡-representable: t0 ≡ t1.
        let target =
            IDatabase::from_instances(1, [Instance::empty(1), instance![[1], [2]]]).unwrap();
        let found = rxor_representable_bounded(&target, 2).unwrap();
        assert!(found.is_some());
        assert_eq!(found.unwrap().worlds().unwrap(), target);
    }

    #[test]
    #[ignore = "bounded search is exponential; run with --ignored (exercised by the experiments harness)"]
    fn join_witness_escapes_rxor() {
        let w = rxor_join_witness(4).unwrap();
        assert_eq!(w.system, "R_⊕≡ (join)");
    }
}
