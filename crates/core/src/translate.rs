//! Bridging c-table conditions and selection predicates.
//!
//! The constructions of Thm 1 and Thm 5.2 turn row conditions `ϕ_t` into
//! selection predicates `ψ_t` "by replacing each occurrence of a
//! variable xᵢ with the index of the term Cⱼ in which xᵢ appears". This
//! module is that translation, parameterized by the variable → column
//! map.

use std::collections::BTreeMap;

use ipdb_logic::{Condition, Term, Var};
use ipdb_rel::{CmpOp, Operand, Pred};

use crate::error::CoreError;

fn term_to_operand(t: &Term, pos: &BTreeMap<Var, usize>) -> Result<Operand, CoreError> {
    Ok(match t {
        Term::Const(v) => Operand::Const(v.clone()),
        Term::Var(x) => Operand::Col(*pos.get(x).ok_or_else(|| {
            CoreError::Unrepresentable(format!("variable {x} has no column position"))
        })?),
    })
}

/// Translates a condition into a selection predicate under a variable →
/// column assignment (every variable of the condition must be mapped).
pub fn condition_to_pred(cond: &Condition, pos: &BTreeMap<Var, usize>) -> Result<Pred, CoreError> {
    Ok(match cond {
        Condition::True => Pred::True,
        Condition::False => Pred::False,
        Condition::Eq(a, b) => Pred::Cmp(
            CmpOp::Eq,
            term_to_operand(a, pos)?,
            term_to_operand(b, pos)?,
        ),
        Condition::Neq(a, b) => Pred::Cmp(
            CmpOp::Neq,
            term_to_operand(a, pos)?,
            term_to_operand(b, pos)?,
        ),
        Condition::Not(c) => Pred::Not(Box::new(condition_to_pred(c, pos)?)),
        Condition::And(cs) => Pred::And(
            cs.iter()
                .map(|c| condition_to_pred(c, pos))
                .collect::<Result<_, _>>()?,
        ),
        Condition::Or(cs) => Pred::Or(
            cs.iter()
                .map(|c| condition_to_pred(c, pos))
                .collect::<Result<_, _>>()?,
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipdb_rel::Value;

    #[test]
    fn atoms_translate_with_positions() {
        let (x, y) = (Var(0), Var(1));
        let pos = BTreeMap::from([(x, 2), (y, 5)]);
        let c = Condition::and([Condition::eq_vv(x, y), Condition::neq_vc(x, 7)]);
        let p = condition_to_pred(&c, &pos).unwrap();
        // Row where col2 == col5 and col2 != 7 passes.
        let row: Vec<Value> = [0, 0, 3, 0, 0, 3]
            .iter()
            .map(|&v| Value::from(v as i64))
            .collect();
        assert!(p.eval(&row).unwrap());
        let row2: Vec<Value> = [0, 0, 7, 0, 0, 7]
            .iter()
            .map(|&v| Value::from(v as i64))
            .collect();
        assert!(!p.eval(&row2).unwrap());
    }

    #[test]
    fn unmapped_variable_errors() {
        let c = Condition::eq_vc(Var(9), 1);
        assert!(condition_to_pred(&c, &BTreeMap::new()).is_err());
    }

    #[test]
    fn connectives_preserved() {
        let x = Var(0);
        let pos = BTreeMap::from([(x, 0)]);
        let c = Condition::Not(Box::new(Condition::Or(vec![
            Condition::eq_vc(x, 1),
            Condition::False,
        ])));
        let p = condition_to_pred(&c, &pos).unwrap();
        assert!(p.eval(&[Value::from(2)]).unwrap());
        assert!(!p.eval(&[Value::from(1)]).unwrap());
    }
}
