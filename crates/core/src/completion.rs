//! Algebraic completion (paper §5: Def. 8, Thms 5–7, Cor. 1).
//!
//! Closing a weaker representation system under a fragment of RA yields
//! a complete one. Each function here is one case of the paper's proofs,
//! returning the constructed table(s) *and* the query; tests check both
//! semantic correctness (the closed pair represents the target) and
//! **fragment honesty** (the query really lies in the fragment the
//! theorem names — [`ipdb_rel::Fragment::admits_query`]).
//!
//! The Thm 6 constructions follow the paper in keeping a *pair* of
//! tables `(S, T)` ("they can be combined together into a single table,
//! but we keep them separate to simplify the presentation"); the second
//! table is addressed as [`Query::Second`]. Their semantics is the
//! direct image of the product of the two `Mod`s.

use ipdb_logic::{Term, Var, VarGen};
use ipdb_rel::{Domain, IDatabase, Instance, Pred, Query, Tuple};
use ipdb_tables::{
    CTable, OrSetTable, OrSetValue, QTable, RBlock, RConstraint, RSets, RXorEquiv,
    RepresentationSystem,
};

use crate::error::CoreError;
use crate::ra_complete::theorem1_query;
use crate::translate::condition_to_pred;

// ---------------------------------------------------------------------
// Definition 8: the closure of a system under a language.
// ---------------------------------------------------------------------

/// The direct image `q(Mod₁ ⊗ Mod₂)` of a pair of world sets under a
/// two-relation query — the semantics of the Thm 6 pair constructions.
pub fn image_of_pair(
    q: &Query,
    s_worlds: &IDatabase,
    t_worlds: &IDatabase,
) -> Result<IDatabase, CoreError> {
    let out_arity = q.arity2(s_worlds.arity(), t_worlds.arity())?;
    let mut out = IDatabase::empty(out_arity);
    for s in s_worlds.iter() {
        for t in t_worlds.iter() {
            out.insert(q.eval2(s, t)?)?;
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Theorem 5: RA-completion.
// ---------------------------------------------------------------------

/// **Thm 5.1** — closing Codd tables under SPJU is RA-complete: for any
/// c-table `T`, the Codd table `Z_k` plus the Thm 1 SPJU query
/// represent `Mod(T)`.
pub fn ra_completion_codd_spju(t: &CTable, gen: &mut VarGen) -> Result<(CTable, Query), CoreError> {
    let (q, k) = theorem1_query(t)?;
    let z = CTable::z_k(k, gen);
    Ok((z, q))
}

/// **Thm 5.2** — closing v-tables under SP is RA-complete: the v-table
/// `S` has one row per c-table row, `(tᵢ, i, x₁, …, x_n)`, and the SP
/// query selects each row's own condition through its tag:
///
/// `q := π_{1…k}( σ_{⋁ᵢ (k+1 = i ∧ ψᵢ)}(S) )`.
pub fn ra_completion_vtable_sp(t: &CTable) -> Result<(CTable, Query), CoreError> {
    let k = t.arity();
    let vars: Vec<Var> = t.vars().into_iter().collect();
    let n = vars.len();
    // ψ translation: variable x_j lives in column k + 1 + j.
    let pos: std::collections::BTreeMap<Var, usize> = vars
        .iter()
        .enumerate()
        .map(|(j, v)| (*v, k + 1 + j))
        .collect();
    let mut rows = Vec::with_capacity(t.len());
    let mut disjuncts = Vec::with_capacity(t.len());
    for (i, row) in t.rows().iter().enumerate() {
        let mut terms: Vec<Term> = Vec::with_capacity(k + 1 + n);
        terms.extend(row.tuple.iter().cloned());
        terms.push(Term::constant(i as i64 + 1));
        terms.extend(vars.iter().map(|v| Term::Var(*v)));
        rows.push(terms);
        let psi = condition_to_pred(&row.cond, &pos)?;
        disjuncts.push(Pred::and([Pred::eq_const(k, i as i64 + 1), psi]));
    }
    let mut s = CTable::v_table(k + 1 + n, rows)?;
    for (v, d) in t.domains() {
        s.set_domain(*v, d.clone())?;
    }
    let q = Query::project(
        Query::select(Query::Input, Pred::or(disjuncts)),
        (0..k).collect(),
    );
    Ok((s, q))
}

// ---------------------------------------------------------------------
// Theorem 6: finite completion.
// ---------------------------------------------------------------------

/// The `(S, T)` pair of Thm 6.1: `S` lists every world's tuples with a
/// tag column, `T` is the single-row or-set `〈1,…,n〉`; the PJ query
/// `π_{1…k}(σ_{k+1=k+2}(S × T))` picks the world whose tag the or-set
/// chose.
pub fn finite_completion_orset_pj(
    target: &IDatabase,
) -> Result<(OrSetTable, OrSetTable, Query), CoreError> {
    let k = target.arity();
    let n = target.len();
    if n == 0 {
        return Err(CoreError::Unrepresentable("no worlds".into()));
    }
    let mut s = OrSetTable::new(k + 1);
    for (i, world) in target.iter().enumerate() {
        for t in world.iter() {
            let mut row: Vec<OrSetValue> =
                t.iter().map(|v| OrSetValue::single(v.clone())).collect();
            row.push(OrSetValue::single(i as i64 + 1));
            s.push(row).map_err(CoreError::Table)?;
        }
    }
    let t = OrSetTable::from_rows(
        1,
        [vec![
            OrSetValue::new((1..=n as i64).collect::<Vec<_>>()).map_err(CoreError::Table)?
        ]],
    )
    .map_err(CoreError::Table)?;
    let q = Query::project(
        Query::select(
            Query::product(Query::Input, Query::Second),
            Pred::eq_cols(k, k + 1),
        ),
        (0..k).collect(),
    );
    Ok((s, t, q))
}

/// Thm 6.2, PJ case: the same construction over finite v-tables
/// (strictly more expressive than or-set tables): `S` ground with tags,
/// `T = {(y)}` with `dom(y) = {1,…,n}`.
pub fn finite_completion_finitev_pj(
    target: &IDatabase,
    gen: &mut VarGen,
) -> Result<(CTable, CTable, Query), CoreError> {
    let k = target.arity();
    let n = target.len();
    if n == 0 {
        return Err(CoreError::Unrepresentable("no worlds".into()));
    }
    let mut s_rows = Vec::new();
    for (i, world) in target.iter().enumerate() {
        for t in world.iter() {
            let mut terms: Vec<Term> = t.iter().map(|v| Term::Const(v.clone())).collect();
            terms.push(Term::constant(i as i64 + 1));
            s_rows.push(terms);
        }
    }
    let s = CTable::v_table(k + 1, s_rows)?;
    let y = gen.fresh();
    let mut t_table = CTable::v_table(1, [vec![Term::Var(y)]])?;
    t_table.set_domain(y, Domain::ints(1..=n as i64))?;
    let q = Query::project(
        Query::select(
            Query::product(Query::Input, Query::Second),
            Pred::eq_cols(k, k + 1),
        ),
        (0..k).collect(),
    );
    Ok((s, t_table, q))
}

/// Thm 6.2, S⁺P case: the *single* finite v-table representing `S × T`
/// — every row carries the shared variable `y` — under
/// `π_{1…k}(σ_{k+1=k+2}(S'))`.
pub fn finite_completion_finitev_sp(
    target: &IDatabase,
    gen: &mut VarGen,
) -> Result<(CTable, Query), CoreError> {
    let k = target.arity();
    let n = target.len();
    if n == 0 {
        return Err(CoreError::Unrepresentable("no worlds".into()));
    }
    let y = gen.fresh();
    let mut rows = Vec::new();
    for (i, world) in target.iter().enumerate() {
        for t in world.iter() {
            let mut terms: Vec<Term> = t.iter().map(|v| Term::Const(v.clone())).collect();
            terms.push(Term::constant(i as i64 + 1));
            terms.push(Term::Var(y));
            rows.push(terms);
        }
    }
    let mut s = CTable::v_table(k + 2, rows)?;
    s.set_domain(y, Domain::ints(1..=n as i64))?;
    let q = Query::project(
        Query::select(Query::Input, Pred::eq_cols(k, k + 1)),
        (0..k).collect(),
    );
    Ok((s, q))
}

/// Thm 6.3, PJ case: `R_sets` can play both roles of the 6.1 pair —
/// `S` as singleton (certain) blocks, `T` as one block of tags.
pub fn finite_completion_rsets_pj(target: &IDatabase) -> Result<(RSets, RSets, Query), CoreError> {
    let k = target.arity();
    let n = target.len();
    if n == 0 {
        return Err(CoreError::Unrepresentable("no worlds".into()));
    }
    let mut s = RSets::new(k + 1);
    for (i, world) in target.iter().enumerate() {
        for t in world.iter() {
            let mut vals: Vec<ipdb_rel::Value> = t.iter().cloned().collect();
            vals.push(ipdb_rel::Value::from(i as i64 + 1));
            s.push(RBlock::new([Tuple::new(vals)], false).map_err(CoreError::Table)?)
                .map_err(CoreError::Table)?;
        }
    }
    let tags = (1..=n as i64).map(|i| Tuple::new([i]));
    let t = RSets::from_blocks(1, [RBlock::new(tags, false).map_err(CoreError::Table)?])
        .map_err(CoreError::Table)?;
    let q = Query::project(
        Query::select(
            Query::product(Query::Input, Query::Second),
            Pred::eq_cols(k, k + 1),
        ),
        (0..k).collect(),
    );
    Ok((s, t, q))
}

/// Thm 6.3, PU case: a single `R_sets` table of arity `k·m` (`m` = the
/// largest world), one wide tuple per world (shorter worlds padded with
/// their own tuples), under `q = ⋃_{i<m} π_{ki…ki+k−1}`.
///
/// The paper's padding assumes non-empty worlds; we extend the proof to
/// targets containing the empty world by making the block optional
/// ("at most one" — the absent choice yields ∅). A target consisting of
/// *only* the empty world needs no block at all.
pub fn finite_completion_rsets_pu(target: &IDatabase) -> Result<(RSets, Query), CoreError> {
    let k = target.arity();
    if target.is_empty() {
        return Err(CoreError::Unrepresentable("no worlds".into()));
    }
    let has_empty = target.iter().any(Instance::is_empty);
    let nonempty: Vec<&Instance> = target.iter().filter(|w| !w.is_empty()).collect();
    let m = nonempty.iter().map(|w| w.len()).max().unwrap_or(1);
    let mut table = RSets::new(k * m);
    if !nonempty.is_empty() {
        let mut wide_tuples = Vec::with_capacity(nonempty.len());
        for world in &nonempty {
            let tuples: Vec<&Tuple> = world.iter().collect();
            let mut vals = Vec::with_capacity(k * m);
            for i in 0..m {
                // Pad by cycling the world's own tuples.
                let t = tuples[i % tuples.len()];
                vals.extend(t.iter().cloned());
            }
            wide_tuples.push(Tuple::new(vals));
        }
        table
            .push(RBlock::new(wide_tuples, has_empty).map_err(CoreError::Table)?)
            .map_err(CoreError::Table)?;
    }
    let q = Query::union_all(
        (0..m).map(|i| Query::project(Query::Input, (k * i..k * i + k).collect())),
    )
    .expect("m ≥ 1");
    Ok((table, q))
}

/// **Thm 6.4**: `R_⊕≡` under S⁺PJ. `S` holds `ℓ = ⌈lg n⌉` bit-pairs
/// `(0,i) ⊕ (1,i)`; `q'(S) = Πᵢ π₁(σ_{2=i}(S))` reads off a random code
/// word; `T` holds every world's tuples tagged with the world's code
/// (the last world absorbs the spare codes, as in Thm 3), made *certain*
/// by listing each tuple twice under `⊕` (`R_⊕≡` tables are tuple
/// *multisets*: exactly one copy is present, so the tuple always is).
/// Returns `(T, S, q)` with `T` addressed as `V` and `S` as `W`.
pub fn finite_completion_rxor_spj_pair(
    target: &IDatabase,
) -> Result<(RXorEquiv, RXorEquiv, Query), CoreError> {
    let k = target.arity();
    let n = target.len();
    if n == 0 {
        return Err(CoreError::Unrepresentable("no worlds".into()));
    }
    let ell = if n <= 1 {
        0
    } else {
        (n - 1).ilog2() as usize + 1
    };

    // S: for each bit position i (1-based tag), tuples (0, i) and (1, i)
    // under ⊕ — exactly one present, its first column is the bit.
    let mut s_tuples = Vec::with_capacity(2 * ell);
    let mut s_constraints = Vec::with_capacity(ell);
    for i in 0..ell {
        s_tuples.push(Tuple::new([0i64, i as i64 + 1]));
        s_tuples.push(Tuple::new([1i64, i as i64 + 1]));
        s_constraints.push(RConstraint::Xor(2 * i, 2 * i + 1));
    }
    let s = RXorEquiv::new(2, s_tuples, s_constraints).map_err(CoreError::Table)?;

    // q'(S): the code word (b₁, …, b_ℓ) — product of single-column
    // selections (S⁺: constant equality). S is the second relation `W`.
    let code = Query::product_all((0..ell).map(|i| {
        Query::project(
            Query::select(Query::Second, Pred::eq_const(1, i as i64 + 1)),
            vec![0],
        )
    }));

    // T: every world's tuples tagged with the ℓ-bit code of the world
    // index; the last world also absorbs the spare codes (Thm 3's trick).
    // Certainty via duplicated ⊕ pairs.
    let mut t_tuples = Vec::new();
    let mut t_constraints = Vec::new();
    let tag_tuple =
        |t: &Tuple, code: usize, tuples: &mut Vec<Tuple>, cons: &mut Vec<RConstraint>| {
            let mut vals: Vec<ipdb_rel::Value> = t.iter().cloned().collect();
            for j in 0..ell {
                vals.push(ipdb_rel::Value::from(((code >> j) & 1) as i64));
            }
            let wide = Tuple::new(vals);
            let idx = tuples.len();
            tuples.push(wide.clone());
            tuples.push(wide);
            cons.push(RConstraint::Xor(idx, idx + 1));
        };
    for (i, world) in target.iter().enumerate() {
        if i + 1 < n {
            for t in world.iter() {
                tag_tuple(t, i, &mut t_tuples, &mut t_constraints);
            }
        } else {
            for c in (n - 1)..(1usize << ell).max(1) {
                for t in world.iter() {
                    tag_tuple(t, c, &mut t_tuples, &mut t_constraints);
                }
            }
        }
    }
    let t = RXorEquiv::new(k + ell, t_tuples, t_constraints).map_err(CoreError::Table)?;

    // q := π_{1…k}( σ_{⋀ⱼ tagⱼ = codeⱼ}( T × q'(S) ) ), all selections
    // positive, hence S⁺PJ. With ℓ = 0 (single world) there is no code:
    // q degenerates to π_{1…k}(V).
    let q = match code {
        Some(code) => Query::project(
            Query::select(
                Query::product(Query::Input, code),
                Pred::and((0..ell).map(|j| Pred::eq_cols(k + j, k + ell + j))),
            ),
            (0..k).collect(),
        ),
        None => Query::project(Query::Input, (0..k).collect()),
    };
    Ok((t, s, q))
}

// ---------------------------------------------------------------------
// Theorem 7 and Corollary 1: general finite completion.
// ---------------------------------------------------------------------

/// **Theorem 7**: if `Mod(host) = {J₁, …, J_ℓ}` has at least as many
/// worlds as the target `{I₁, …, I_k}`, full RA completes the host:
///
/// `q(V) := ⋃_{i<k} Iᵢ × qᵢ(V) ∪ ⋃_{k≤i≤ℓ} I_k × qᵢ(V)`
///
/// where `qᵢ(V)` is the boolean query "`V = Jᵢ`" (expressible with
/// difference) and `Iᵢ` is a constant query.
pub fn theorem7_query(host_worlds: &IDatabase, target: &IDatabase) -> Result<Query, CoreError> {
    let k = target.len();
    let ell = host_worlds.len();
    if k == 0 {
        return Err(CoreError::Unrepresentable("no worlds".into()));
    }
    if ell < k {
        return Err(CoreError::HostTooSmall {
            needed: k,
            available: ell,
        });
    }
    let truth = || Query::Lit(Instance::singleton(Tuple::empty()));
    // qᵢ(V) := {()} − π_[]((V − Jᵢ) ∪ (Jᵢ − V)).
    let world_test = |j: &Instance| -> Query {
        let j_lit = Query::Lit(j.clone());
        let symm_diff = Query::union(
            Query::diff(Query::Input, j_lit.clone()),
            Query::diff(j_lit, Query::Input),
        );
        Query::diff(truth(), Query::project(symm_diff, vec![]))
    };
    let targets: Vec<&Instance> = target.iter().collect();
    let parts = host_worlds.iter().enumerate().map(|(i, j_world)| {
        let out = targets[i.min(k - 1)];
        Query::product(Query::Lit(out.clone()), world_test(j_world))
    });
    Ok(Query::union_all(parts).expect("ℓ ≥ 1"))
}

/// **Corollary 1**: `?`-tables + RA are finitely complete — a `?`-table
/// with `⌈lg k⌉` optional tuples has at least `k` worlds, and Thm 7
/// does the rest.
pub fn corollary1_qtable(target: &IDatabase) -> Result<(QTable, Query), CoreError> {
    let k = target.len();
    if k == 0 {
        return Err(CoreError::Unrepresentable("no worlds".into()));
    }
    let m = if k <= 1 {
        0
    } else {
        (k - 1).ilog2() as usize + 1
    };
    let host = QTable::from_rows(1, (1..=m as i64).map(|i| (Tuple::new([i]), true)))
        .map_err(CoreError::Table)?;
    let host_worlds = host.worlds().map_err(CoreError::Table)?;
    let q = theorem7_query(&host_worlds, target)?;
    Ok((host, q))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipdb_logic::Condition;
    use ipdb_rel::{instance, Fragment};
    use ipdb_tables::t_var;

    fn sample_target() -> IDatabase {
        IDatabase::from_instances(
            2,
            [
                instance![[1, 2]],
                instance![[1, 2], [3, 4]],
                instance![[5, 6], [7, 8]],
            ],
        )
        .unwrap()
    }

    fn sample_ctable() -> CTable {
        let (x, y) = (Var(0), Var(1));
        CTable::builder(2)
            .row([ipdb_tables::t_const(1), t_var(x)], Condition::True)
            .row(
                [t_var(x), t_var(y)],
                Condition::and([Condition::neq_vv(x, y), Condition::neq_vc(x, 1)]),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn thm5_1_codd_spju() {
        let t = sample_ctable();
        let mut gen = VarGen::avoiding(t.vars());
        let (s, q) = ra_completion_codd_spju(&t, &mut gen).unwrap();
        assert!(s.is_codd());
        assert!(Fragment::SPJU.admits_query(&q, s.arity()).unwrap());
        let qbar_s = s.eval_query(&q).unwrap();
        assert!(qbar_s.equivalent_to(&t).unwrap());
    }

    #[test]
    fn thm5_2_vtable_sp() {
        let t = sample_ctable();
        let (s, q) = ra_completion_vtable_sp(&t).unwrap();
        assert!(s.is_v_table());
        assert!(Fragment::SP.admits_query(&q, s.arity()).unwrap());
        let qbar_s = s.eval_query(&q).unwrap();
        assert!(qbar_s.equivalent_to(&t).unwrap());
    }

    #[test]
    fn thm5_2_on_finite_domain_table() {
        let x = Var(0);
        let t = CTable::builder(1)
            .row([t_var(x)], Condition::neq_vc(x, 2))
            .domain(x, Domain::ints(1..=3))
            .build()
            .unwrap();
        let (s, q) = ra_completion_vtable_sp(&t).unwrap();
        let qbar_s = s.eval_query(&q).unwrap();
        assert!(qbar_s.equivalent_to(&t).unwrap());
    }

    #[test]
    fn thm6_1_orset_pj() {
        let target = sample_target();
        let (s, t, q) = finite_completion_orset_pj(&target).unwrap();
        assert!(Fragment::PJ.admits(q.op_set()));
        let image = image_of_pair(&q, &s.worlds().unwrap(), &t.worlds().unwrap()).unwrap();
        assert_eq!(image, target);
    }

    #[test]
    fn thm6_2_finitev_pj() {
        let target = sample_target();
        let mut gen = VarGen::new();
        let (s, t, q) = finite_completion_finitev_pj(&target, &mut gen).unwrap();
        assert!(s.is_v_table() && t.is_v_table());
        assert!(Fragment::PJ.admits(q.op_set()));
        let image = image_of_pair(&q, &s.mod_finite().unwrap(), &t.mod_finite().unwrap()).unwrap();
        assert_eq!(image, target);
    }

    #[test]
    fn thm6_2_finitev_sp() {
        let target = sample_target();
        let mut gen = VarGen::new();
        let (s, q) = finite_completion_finitev_sp(&target, &mut gen).unwrap();
        assert!(s.is_v_table());
        assert!(Fragment::S_PLUS_P.admits_query(&q, s.arity()).unwrap());
        let image = q.eval_idb(&s.mod_finite().unwrap()).unwrap();
        assert_eq!(image, target);
    }

    #[test]
    fn thm6_3_rsets_pj() {
        let target = sample_target();
        let (s, t, q) = finite_completion_rsets_pj(&target).unwrap();
        assert!(Fragment::PJ.admits(q.op_set()));
        let image = image_of_pair(&q, &s.worlds().unwrap(), &t.worlds().unwrap()).unwrap();
        assert_eq!(image, target);
    }

    #[test]
    fn thm6_3_rsets_pu() {
        let target = sample_target();
        let (s, q) = finite_completion_rsets_pu(&target).unwrap();
        assert!(Fragment::PU.admits(q.op_set()));
        let image = q.eval_idb(&s.worlds().unwrap()).unwrap();
        assert_eq!(image, target);
    }

    #[test]
    fn thm6_3_rsets_pu_with_empty_world() {
        let target =
            IDatabase::from_instances(1, [Instance::empty(1), instance![[1]], instance![[2], [3]]])
                .unwrap();
        let (s, q) = finite_completion_rsets_pu(&target).unwrap();
        let image = q.eval_idb(&s.worlds().unwrap()).unwrap();
        assert_eq!(image, target);
    }

    #[test]
    fn thm6_4_rxor_spj() {
        let target =
            IDatabase::from_instances(1, [instance![[1]], instance![[2], [3]], instance![[4]]])
                .unwrap();
        let (t, s, q) = finite_completion_rxor_spj_pair(&target).unwrap();
        assert!(Fragment::S_PLUS_PJ.admits(q.op_set()));
        let image = image_of_pair(&q, &t.worlds().unwrap(), &s.worlds().unwrap()).unwrap();
        assert_eq!(image, target);
    }

    #[test]
    fn thm6_4_single_world() {
        let target = IDatabase::single(instance![[9]]);
        let (t, s, q) = finite_completion_rxor_spj_pair(&target).unwrap();
        let image = image_of_pair(&q, &t.worlds().unwrap(), &s.worlds().unwrap()).unwrap();
        assert_eq!(image, target);
    }

    #[test]
    fn thm7_general_completion() {
        let target = sample_target();
        // Host: a ?-table with 2 optional tuples → 4 ≥ 3 worlds.
        let host =
            QTable::from_rows(1, [(Tuple::new([1i64]), true), (Tuple::new([2i64]), true)]).unwrap();
        let host_worlds = host.worlds().unwrap();
        let q = theorem7_query(&host_worlds, &target).unwrap();
        let image = q.eval_idb(&host_worlds).unwrap();
        assert_eq!(image, target);
    }

    #[test]
    fn thm7_host_too_small() {
        let target = sample_target();
        let host_worlds = IDatabase::from_instances(1, [instance![[1]]]).unwrap();
        assert!(matches!(
            theorem7_query(&host_worlds, &target),
            Err(CoreError::HostTooSmall {
                needed: 3,
                available: 1
            })
        ));
    }

    #[test]
    fn corollary1_completion() {
        let target = sample_target();
        let (host, q) = corollary1_qtable(&target).unwrap();
        let image = q.eval_idb(&host.worlds().unwrap()).unwrap();
        assert_eq!(image, target);
        // 3 worlds → 2 optional tuples.
        assert_eq!(host.optional_count(), 2);
    }

    #[test]
    fn corollary1_single_world() {
        let target = IDatabase::single(instance![[1, 1]]);
        let (host, q) = corollary1_qtable(&target).unwrap();
        assert_eq!(host.optional_count(), 0);
        let image = q.eval_idb(&host.worlds().unwrap()).unwrap();
        assert_eq!(image, target);
    }
}
