//! Probabilistic schema mappings — the SHARQ motivation.
//!
//! The paper (§1) cites bio-informatics data sharing where mappings
//! between researchers' schemas are *approximate*: "the sources of
//! uncertainty include data from error-prone experiments and accepted
//! scientific hypotheses that allow for limited mismatch". This example
//! models a gene-annotation exchange as a p-`?`-table (tuple-level
//! confidence) joined with a p-or-set-table (attribute-level
//! alternatives), embeds both into probabilistic c-tables (§8), and
//! compares the safe-plan evaluator with exact lineage computation
//! (§8's discussion of Dalvi–Suciu).
//!
//! Run with `cargo run --example schema_mapping`.

use ipdb::prelude::*;
use ipdb::prob::extensional::{
    exact_prob, forced_extensional, lifted_prob, BoolCq, CqArg, CqAtom, ProbDb,
};
use ipdb::prob::FiniteSpace;

fn main() {
    // Matches(gene, pathway): mapping tuples with confidences — a
    // p-?-table (tuple-independent, §7).
    let matches = PTable::from_rows(
        2,
        [
            (tuple!["brca1", "repair"], Rat::new(9, 10)),
            (tuple!["brca1", "cycle"], Rat::new(2, 10)),
            (tuple!["tp53", "cycle"], Rat::new(8, 10)),
        ],
    )
    .unwrap();
    println!("{matches}");

    // Experiments(gene): which gene a noisy assay actually measured — a
    // p-or-set-table cell with alternatives (§7, ProbView-style).
    let assay = POrSetTable::from_rows(
        1,
        [vec![FiniteSpace::new([
            (Value::from("brca1"), Rat::new(7, 10)),
            (Value::from("brca2"), Rat::new(3, 10)),
        ])
        .unwrap()]],
    )
    .unwrap();
    println!("{assay}");

    // Both models embed into pc-tables (the paper's central point: one
    // model subsumes them all).
    let mut gen = VarGen::new();
    let matches_pc = matches.to_pctable(&mut gen).unwrap();
    let assay_pc = assay.to_pctable(&mut gen).unwrap();
    println!(
        "as pc-tables: {} + {} variables",
        matches_pc.dists().len(),
        assay_pc.dists().len()
    );

    // World distributions.
    let m_worlds = matches_pc.mod_space().unwrap();
    println!(
        "Matches has {} worlds; P[perfect mapping] = {}",
        m_worlds.len(),
        m_worlds.world_prob(&ipdb::rel::instance![
            ["brca1", "repair"],
            ["tp53", "cycle"]
        ])
    );

    // Boolean question: does the assayed gene map into the repair
    // pathway? ∃g. Assay(g) ∧ Matches(g, 'repair') — a hierarchical
    // (safe) conjunctive query over independent relations.
    let mut db = ProbDb::new();
    db.insert("Matches", matches.clone());
    db.insert(
        "Assay",
        PTable::from_rows(
            1,
            [
                (tuple!["brca1"], Rat::new(7, 10)),
                (tuple!["brca2"], Rat::new(3, 10)),
            ],
        )
        .unwrap(),
    );
    let safe_q = BoolCq::new(vec![
        CqAtom::new("Assay", vec![CqArg::Var(0)]),
        CqAtom::new(
            "Matches",
            vec![CqArg::Var(0), CqArg::Const(Value::from("repair"))],
        ),
    ]);
    println!(
        "\nq_safe = {safe_q} (hierarchical: {})",
        safe_q.is_hierarchical()
    );
    let exact = exact_prob(&safe_q, &db).unwrap();
    let lifted = lifted_prob(&safe_q, &db).unwrap();
    println!("  exact (lineage+Shannon) = {exact}");
    println!("  safe plan (extensional) = {lifted}");
    assert_eq!(exact, lifted);

    // The unsafe pattern H₀ = R(x), S(x,y), T(y): the extensional plan
    // silently gets it wrong — the dichotomy the paper points to in §8.
    let mut db2 = ProbDb::new();
    db2.insert(
        "R",
        PTable::from_rows(
            1,
            [(tuple![1], Rat::new(1, 2)), (tuple![2], Rat::new(1, 2))],
        )
        .unwrap(),
    );
    db2.insert(
        "S",
        PTable::from_rows(
            2,
            [
                (tuple![1, 10], Rat::new(1, 2)),
                (tuple![2, 10], Rat::new(1, 2)),
                (tuple![2, 20], Rat::new(1, 2)),
            ],
        )
        .unwrap(),
    );
    db2.insert(
        "T",
        PTable::from_rows(
            1,
            [(tuple![10], Rat::new(1, 2)), (tuple![20], Rat::new(1, 2))],
        )
        .unwrap(),
    );
    let h0 = BoolCq::h0();
    println!("\nH₀ = {h0} (hierarchical: {})", h0.is_hierarchical());
    let exact = exact_prob(&h0, &db2).unwrap();
    let wrong = forced_extensional(&h0, &db2).unwrap();
    println!("  exact       = {exact} ≈ {:.6}", exact.to_f64());
    println!("  forced plan = {wrong} ≈ {:.6}", wrong.to_f64());
    assert!(lifted_prob(&h0, &db2).is_err());
    assert_ne!(exact, wrong);
    println!("  safe-plan evaluator correctly refuses H₀ ✓");
}
