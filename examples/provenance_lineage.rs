//! §9 made executable: c-table conditions are lineage, and semiring
//! provenance generalizes both.
//!
//! Run with `cargo run --example provenance_lineage`.

use std::collections::BTreeMap;

use ipdb::prelude::*;
use ipdb::provenance::{
    connection, eval, hom, KRelation, NatSr, Poly, PosBoolSr, Token, TropSr, WhySr,
};
use ipdb::rel::Query;

fn main() {
    // A boolean c-table: claims from two extraction pipelines (a, b).
    let (a, b) = (Var(0), Var(1));
    let mut claims = BooleanCTable::new(2);
    claims
        .push(tuple!["doc1", "acme"], Condition::bvar(a))
        .unwrap();
    claims
        .push(
            tuple!["doc1", "globex"],
            Condition::and([Condition::bvar(a), Condition::bvar(b)]),
        )
        .unwrap();
    claims
        .push(tuple!["doc2", "acme"], Condition::bvar(b))
        .unwrap();
    println!("{claims}");

    // Which companies are mentioned? π₂(V).
    let q = Query::project(Query::Input, vec![1]);

    // (1) The c-table algebra computes conditions (Thm 4) …
    let qbar = claims.as_ctable().eval_query(&q).unwrap().simplified();
    println!("q̄(T):\n{qbar}");

    // (2) … and the PosBool semiring computes provenance. §9: they are
    // the same thing.
    let annotated = connection::ctable_to_krel(claims.as_ctable()).unwrap();
    let prov = eval(&q, &annotated).unwrap();
    println!("PosBool provenance of q:");
    for (t, k) in prov.iter() {
        println!("  {t} : {}", k.0);
    }
    let doms: BTreeMap<Var, Domain> = [(a, Domain::bools()), (b, Domain::bools())]
        .into_iter()
        .collect();
    assert_eq!(
        connection::conditions_match_provenance(claims.as_ctable(), &q, &doms).unwrap(),
        None
    );
    println!("§9 connection verified: conditions ≡ provenance ✓\n");

    // (3) Provenance polynomials ℕ[X] are the free semiring: annotate
    // with tokens, evaluate once, specialize everywhere.
    let base = KRelation::from_annotated(
        2,
        [
            (tuple!["doc1", "acme"], Poly::token(Token(0))),
            (tuple!["doc1", "globex"], Poly::token(Token(1))),
            (tuple!["doc2", "acme"], Poly::token(Token(2))),
        ],
    )
    .unwrap();
    let self_join = Query::project(
        Query::select(
            Query::product(Query::Input, Query::Input),
            Pred::eq_cols(1, 3),
        ),
        vec![1],
    );
    let poly = eval(&self_join, &base).unwrap();
    println!("ℕ[X] provenance of the company self-join:");
    for (t, p) in poly.iter() {
        println!("  {t} : {p}");
    }

    // Specialize to counting (bag semantics): how many derivations?
    let counts: BTreeMap<Token, NatSr> = (0..3).map(|i| (Token(i), NatSr(1))).collect();
    let bag = hom::specialize(&poly, &counts);
    println!("derivation counts:");
    for (t, n) in bag.iter() {
        println!("  {t} : {}", n.0);
    }

    // Specialize to min-cost: each source tuple has an acquisition cost.
    let costs: BTreeMap<Token, TropSr> = [
        (Token(0), TropSr::cost(3)),
        (Token(1), TropSr::cost(10)),
        (Token(2), TropSr::cost(1)),
    ]
    .into_iter()
    .collect();
    let cheapest = hom::specialize(&poly, &costs);
    println!("cheapest derivations:");
    for (t, c) in cheapest.iter() {
        println!("  {t} : {:?}", c.0);
    }

    // Why-provenance: the witness sets.
    let why: BTreeMap<Token, WhySr> = (0..3).map(|i| (Token(i), WhySr::token(Token(i)))).collect();
    let witnesses = hom::specialize(&poly, &why);
    println!("why-provenance (witness sets):");
    for (t, w) in witnesses.iter() {
        println!("  {t} : {} witnesses", w.len());
    }

    // And back to event expressions: tokens ↦ boolean conditions gives
    // exactly the q̄ conditions again (universality).
    let to_cond: BTreeMap<Token, PosBoolSr> = [
        (Token(0), PosBoolSr::new(Condition::bvar(a))),
        (
            Token(1),
            PosBoolSr::new(Condition::and([Condition::bvar(a), Condition::bvar(b)])),
        ),
        (Token(2), PosBoolSr::new(Condition::bvar(b))),
    ]
    .into_iter()
    .collect();
    let events = hom::specialize(&eval(&q, &base).unwrap(), &to_cond);
    println!("events via ℕ[X] → PosBool specialization:");
    for (t, k) in events.iter() {
        println!("  {t} : {}", k.0);
    }
}
