//! Quickstart: build the paper's Example 2 c-table, enumerate worlds,
//! run queries through the c-table algebra, and ask certain/possible
//! questions.
//!
//! Run with `cargo run --example quickstart`.

use ipdb::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // Example 2's c-table S (arity 3, variables x, y, z):
    //
    //   1 2 x
    //   3 x y   : x = y ∧ z ≠ 2
    //   z 4 5   : x ≠ 1 ∨ x ≠ y
    // ------------------------------------------------------------------
    let mut vars = VarGen::new();
    let (x, y, z) = (vars.fresh(), vars.fresh(), vars.fresh());
    let s = CTable::builder(3)
        .row([t_const(1), t_const(2), t_var(x)], Condition::True)
        .row(
            [t_const(3), t_var(x), t_var(y)],
            Condition::and([Condition::eq_vv(x, y), Condition::neq_vc(z, 2)]),
        )
        .row(
            [t_var(z), t_const(4), t_const(5)],
            Condition::or([Condition::neq_vc(x, 1), Condition::neq_vv(x, y)]),
        )
        .build()
        .expect("well-formed table");
    println!("{s}");

    // Mod(S) is infinite (D is infinite); enumerate a finite slice.
    let slice = Domain::new([1i64, 2, 77, 97]);
    let worlds = s.mod_over(&slice).expect("enumerable over a slice");
    println!(
        "worlds over slice {slice}: {} (of infinitely many over D)",
        worlds.len()
    );
    let sample = ipdb::rel::instance![[1, 2, 77], [97, 4, 5]];
    println!(
        "paper-listed world {{(1,2,77),(97,4,5)}} present? {}",
        worlds.contains(&sample)
    );

    // Possible vs certain membership, decided exactly over infinite D
    // via the active-domain + fresh-constants slice.
    let probe = tuple![1, 2, 1];
    println!(
        "(1,2,1): possible={} certain={}",
        s.possible_tuple(&probe).unwrap(),
        s.certain_tuple(&probe).unwrap()
    );

    // ------------------------------------------------------------------
    // Query S through the c-table algebra q̄ (Theorem 4): the answer is
    // another c-table representing q applied worldwise.
    // ------------------------------------------------------------------
    let q = Query::project(
        Query::select(Query::Input, Pred::neq_const(0, 3)),
        vec![0, 2],
    );
    println!("q = {q}");
    let answered = s.eval_query(&q).expect("closure under RA").simplified();
    println!("q̄(S) = {answered}");

    // Lemma 1 in action: ν(q̄(S)) = q(ν(S)) for any valuation ν.
    let nu = Valuation::from_iter([
        (x, Value::from(7)),
        (y, Value::from(7)),
        (z, Value::from(9)),
    ]);
    let lhs = answered.apply_valuation(&nu).unwrap();
    let rhs = q.eval(&s.apply_valuation(&nu).unwrap()).unwrap();
    assert_eq!(lhs, rhs);
    println!("Lemma 1 check under ν = {nu}: {lhs}");

    // ------------------------------------------------------------------
    // RA-completeness (Theorems 1–2): S is definable from the Codd table
    // Z₃ by an SPJU query, and conversely q̄(Z₃) is a c-table again.
    // ------------------------------------------------------------------
    let (q1, k) = ipdb::theory::ra_complete::theorem1_query(&s).unwrap();
    println!("Theorem 1: Mod(S) = q(Z_{k}) with q of size {}", q1.size());
    let z_worlds = IDatabase::z_k_over(&slice, k);
    assert_eq!(q1.eval_idb(&z_worlds).unwrap(), worlds);
    println!("verified q(Z_{k}) = Mod(S) over the slice ✓");
}
