//! Incompleteness from update propagation — the Orchestra motivation.
//!
//! The paper (§1) was motivated by peer-to-peer data exchange, where
//! propagating updates between sites with different schemas yields
//! *labeled nulls* (v-table variables) and conditions. This example
//! simulates a tiny exchange: a source `Orders(customer, item)` is
//! mapped to a target `Shipments(item, warehouse, priority)` where the
//! warehouse is unknown (a labeled null shared by all shipments of one
//! item) and rush priority applies only under a condition.
//!
//! Run with `cargo run --example data_exchange`.

use ipdb::prelude::*;
use ipdb::rel::Query;

fn main() {
    let mut vars = VarGen::new();
    // Labeled nulls: one unknown warehouse per item.
    let w_tv = vars.fresh(); // warehouse for "tv"
    let w_ps = vars.fresh(); // warehouse for "console"
    let rush = vars.fresh(); // unknown priority flag (1 = rush)

    // The exchanged target instance: incomplete, with correlations the
    // current SQL-null model cannot express (w_tv is the *same* unknown
    // in both tv rows — marked nulls, §2).
    let shipments = CTable::builder(3)
        .row(
            [t_const("tv"), t_var(w_tv), t_const("std")],
            Condition::True,
        )
        .row(
            [t_const("tv"), t_var(w_tv), t_const("rush")],
            Condition::eq_vc(rush, 1),
        )
        .row(
            [t_const("console"), t_var(w_ps), t_const("std")],
            Condition::neq_vv(w_ps, w_tv), // different warehouses
        )
        .build()
        .unwrap();
    println!("exchanged target (c-table):\n{shipments}");

    // Certain answers survive every completion of the nulls; possible
    // answers survive some completion.
    let q = Query::project(Query::Input, vec![0, 2]); // (item, priority)
    let answered = shipments.eval_query(&q).unwrap().simplified();
    println!("π(item, priority):\n{answered}");

    for (item, prio) in [("tv", "std"), ("tv", "rush"), ("console", "std")] {
        let probe = tuple![item, prio];
        println!(
            "  ({item}, {prio}): certain={} possible={}",
            answered.certain_tuple(&probe).unwrap(),
            answered.possible_tuple(&probe).unwrap(),
        );
    }

    // Which warehouses could co-locate both products? A join through the
    // shared labeled nulls:
    // π_warehouse(σ_{item='tv'}(V) ⋈_warehouse σ_{item='console'}(V)).
    let co_located = Query::project(
        Query::select(
            Query::product(
                Query::select(Query::Input, Pred::eq_const(0, "tv")),
                Query::select(Query::Input, Pred::eq_const(0, "console")),
            ),
            Pred::eq_cols(1, 4),
        ),
        vec![1],
    );
    let co = shipments.eval_query(&co_located).unwrap().simplified();
    println!("co-located warehouses (c-table):\n{co}");
    // The condition w_ps ≠ w_tv makes co-location impossible: the result
    // is unsatisfiable, i.e. certainly empty.
    let any_world = co
        .mod_over(&Domain::new(["north", "south"].map(Value::from)))
        .unwrap();
    assert!(any_world.iter().all(|w| w.is_empty()));
    println!("=> certainly empty (the exchange mapping forbids co-location) ✓");

    // Finally: Theorem 5.2 in action — this c-table, like any other, is
    // an SP view over a plain v-table (algebraic completion).
    let (vtable, sp_query) = ipdb::theory::completion::ra_completion_vtable_sp(&shipments).unwrap();
    assert!(vtable.is_v_table());
    println!(
        "Thm 5.2: the target is the SP query {} over a v-table with {} rows",
        sp_query,
        vtable.len()
    );
    assert!(vtable
        .eval_query(&sp_query)
        .unwrap()
        .equivalent_to(&shipments)
        .unwrap());
    println!("verified q̄(S) ≡ target ✓");
}
