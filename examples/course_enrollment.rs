//! The paper's §1 running example as a probabilistic c-table.
//!
//! "Alice is taking a course that is Math with probability 0.3, Physics
//! (0.3), or Chemistry (0.4), while Bob takes the same course as Alice,
//! provided that course is Physics or Chemistry, and Theo takes Math
//! with probability 0.85."
//!
//! Run with `cargo run --example course_enrollment`.

use ipdb::prelude::*;
use ipdb::prob::answering;
use ipdb::prob::FiniteSpace;
use ipdb::rel::Query;

fn main() {
    let mut vars = VarGen::new();
    let x = vars.fresh(); // Alice's course
    let t = vars.fresh(); // Theo's coin

    // Student–Course table with conditions, exactly the paper's figure.
    let table = CTable::builder(2)
        .row([t_const("Alice"), t_var(x)], Condition::True)
        .row(
            [t_const("Bob"), t_var(x)],
            Condition::or([Condition::eq_vc(x, "phys"), Condition::eq_vc(x, "chem")]),
        )
        .row([t_const("Theo"), t_const("math")], Condition::eq_vc(t, 1))
        .build()
        .unwrap();

    let x_dist = FiniteSpace::new([
        (Value::from("math"), Rat::new(3, 10)),
        (Value::from("phys"), Rat::new(3, 10)),
        (Value::from("chem"), Rat::new(4, 10)),
    ])
    .unwrap();
    let t_dist = FiniteSpace::new([
        (Value::from(0), Rat::new(15, 100)),
        (Value::from(1), Rat::new(85, 100)),
    ])
    .unwrap();
    let pc = PcTable::new(table, [(x, x_dist), (t, t_dist)]).unwrap();
    println!("{pc}");

    // The distribution over possible worlds (Def. 13: image of the
    // product space of valuations).
    let worlds = pc.mod_space().unwrap();
    println!("distribution over {} worlds:", worlds.len());
    for (world, p) in worlds.space().iter() {
        println!("  P = {p:>7} : {world}");
    }

    // Marginal tuple probabilities — the question the §7 papers asked.
    println!("\ntuple marginals:");
    for (tup, p) in worlds.marginals() {
        println!("  P[{tup}] = {p}");
    }

    // Query through Theorem 9's closure: who is taking the same course
    // as Alice? π₁(σ₂₌₄,₁≠'Alice'(V × σ₁₌'Alice'(V))).
    let q = Query::project(
        Query::select(
            Query::product(
                Query::Input,
                Query::select(Query::Input, Pred::eq_const(0, "Alice")),
            ),
            Pred::and([Pred::eq_cols(1, 3), Pred::neq_const(0, "Alice")]),
        ),
        vec![0],
    );
    println!("\nq = {q}");
    let answered = pc.eval_query(&q).unwrap();
    println!("answer marginals (via the Shannon engine on q̄(T)):");
    for (tup, p) in answering::answer_marginals(&pc, &q).unwrap() {
        println!("  P[{tup}] = {p}");
    }
    // Cross-check with the three probability engines on 'Bob'.
    let bob = tuple!["Bob"];
    let p_enum = answering::tuple_prob_enum(&answered, &bob).unwrap();
    let p_shan = answering::tuple_prob_shannon(&answered, &bob).unwrap();
    assert_eq!(p_enum, p_shan);
    assert_eq!(p_enum, Rat::new(7, 10));
    println!("\nP[Bob shares Alice's course] = {p_enum} (= 0.3 + 0.4) ✓");
}
