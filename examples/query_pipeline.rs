//! The query pipeline end to end: parse a textual RA query, inspect the
//! optimizer's work with `explain()`, then execute the same prepared
//! plan over a c-table (the paper's Example 2) and a pc-table (the §1
//! course-enrollment example) — one engine, three semantics.
//!
//! Run with `cargo run --example query_pipeline`.

use ipdb::engine::{parser, Engine, Server, ServerConfig};
use ipdb::prelude::*;
use ipdb::prob::{rat, FiniteSpace};

fn main() {
    // ------------------------------------------------------------------
    // Stage 1: parse. The surface syntax is compact ASCII with 0-based
    // column refs; `render` is its exact inverse.
    // ------------------------------------------------------------------
    let text = "pi[2,5](sigma[and(#0=1, #1=#4)](V x V))";
    let q = parser::parse(text).expect("well-formed query text");
    println!("parsed:       {text}");
    println!("paper form:   {q}");
    println!("canonical:    {}\n", parser::render(&q));

    // ------------------------------------------------------------------
    // Stages 2–3: plan + optimize. `explain()` shows the selection being
    // split: `#0=1` is pushed into the left product factor, while the
    // spanning join predicate `#1=#4` stays above the product.
    // ------------------------------------------------------------------
    let engine = Engine::new();
    let stmt = engine.prepare(&q, 3).expect("well-typed at arity 3");
    println!("{}", stmt.explain());

    // ------------------------------------------------------------------
    // Stage 4a: execute over Example 2's c-table S (arity 3; x, y, z).
    // ------------------------------------------------------------------
    let mut vars = VarGen::new();
    let (x, y, z) = (vars.fresh(), vars.fresh(), vars.fresh());
    let s = CTable::builder(3)
        .row([t_const(1), t_const(2), t_var(x)], Condition::True)
        .row(
            [t_const(3), t_var(x), t_var(y)],
            Condition::and([Condition::eq_vv(x, y), Condition::neq_vc(z, 2)]),
        )
        .row(
            [t_var(z), t_const(4), t_const(5)],
            Condition::or([Condition::neq_vc(x, 1), Condition::neq_vv(x, y)]),
        )
        .build()
        .expect("well-formed table");
    println!("Example 2 c-table S:\n{s}");
    let answer = stmt.execute(&s).expect("closed under q̄ (Thm 4)");
    println!("q̄(S), conditions simplified and false rows pruned:\n{answer}");

    // ------------------------------------------------------------------
    // Stage 4b: the same pipeline over a pc-table (§1): Alice's course
    // x ~ {math: .3, phys: .3, chem: .4}; Bob takes x if x ∈ {phys,
    // chem}; Theo takes math iff t = 1 with P[t = 1] = .85.
    // ------------------------------------------------------------------
    let mut g = VarGen::new();
    let (course, toss) = (g.fresh(), g.fresh());
    let table = CTable::builder(2)
        .row([t_const("Alice"), t_var(course)], Condition::True)
        .row(
            [t_const("Bob"), t_var(course)],
            Condition::or([
                Condition::eq_vc(course, "phys"),
                Condition::eq_vc(course, "chem"),
            ]),
        )
        .row(
            [t_const("Theo"), t_const("math")],
            Condition::eq_vc(toss, 1),
        )
        .build()
        .expect("well-formed table");
    let pc = PcTable::new(
        table,
        [
            (
                course,
                FiniteSpace::new([
                    (Value::from("math"), rat!(3, 10)),
                    (Value::from("phys"), rat!(3, 10)),
                    (Value::from("chem"), rat!(4, 10)),
                ])
                .expect("sums to 1"),
            ),
            (
                toss,
                FiniteSpace::new([
                    (Value::from(0), rat!(15, 100)),
                    (Value::from(1), rat!(85, 100)),
                ])
                .expect("sums to 1"),
            ),
        ],
    )
    .expect("every variable has a distribution");

    // "Who takes the same course as Alice (and is not Alice)?"
    let who = "pi[0](sigma[and(#1=#3, #0!='Alice')](V x sigma[#0='Alice'](V)))";
    let stmt2 = engine.prepare_text(who, 2).expect("well-typed at arity 2");
    println!("query: {who}");
    println!("{}", stmt2.explain());
    let out = stmt2.execute(&pc).expect("closed under q̄ (Thm 9)");
    println!("answer pc-table:\n{out}");
    let m = out.mod_space().expect("finite distributions");
    println!(
        "P[Bob answers] = {:?} (expected 7/10)",
        m.tuple_prob(&tuple!["Bob"])
    );
    assert_eq!(m.tuple_prob(&tuple!["Bob"]), rat!(7, 10));

    // The optimized and naive plans agree on every backend — here,
    // exactly, as distributions (Theorem 9 + soundness of the rewrites).
    let naive = stmt2.execute_naive(&pc).expect("naive evaluation");
    assert!(m.same_distribution(&naive.mod_space().expect("finite")));
    println!("optimized ≡ naive on the pc-table backend ✓");

    // ------------------------------------------------------------------
    // Named relations: the §2 footnote's "arbitrary relational schemas".
    // Prepare over a Schema, execute over a Catalog; σ(×) over two
    // *named* relations still plans to a hash join.
    // ------------------------------------------------------------------
    let schema = Schema::new([("Takes", 2), ("Passed", 2)]).expect("distinct names");
    let joined = engine
        .prepare_text_schema("pi[0,1](sigma[and(#0=#2, #1=#3)](Takes x Passed))", &schema)
        .expect("well-typed over the named schema");
    println!("\nnamed-relation query over {schema}:");
    println!("{}", joined.explain());
    let cat: Catalog<Instance> = [
        (
            "Takes",
            instance![["Alice", "math"], ["Bob", "chem"], ["Theo", "math"]],
        ),
        ("Passed", instance![["Alice", "math"], ["Bob", "phys"]]),
    ]
    .into_iter()
    .collect();
    let passed_what_they_take = joined
        .execute_catalog(&cat)
        .expect("schema matches catalog");
    println!("Takes ⋈ Passed = {passed_what_they_take}");
    assert_eq!(passed_what_they_take, instance![["Alice", "math"]]);
    println!("named-relation catalog execution ✓");

    // ------------------------------------------------------------------
    // Observability: every execution path has an `_analyzed` twin that
    // additionally returns a `QueryReport` — the executed operator tree
    // annotated with exact row counts, selectivities, and wall-clock
    // timings, plus BDD-manager counters on the probabilistic path.
    // (`IPDB_METRICS=1` further streams engine-wide counters into the
    // global `ipdb::obs` registry; the reports below need no flag.)
    // ------------------------------------------------------------------
    let (analyzed, report) = joined
        .execute_catalog_analyzed(&cat)
        .expect("schema matches catalog");
    assert_eq!(analyzed, passed_what_they_take);
    println!("\n{}", report.render());
    let (dist, prob_report) = stmt2
        .answer_dist_analyzed(&pc)
        .expect("finite distributions");
    assert!(dist
        .iter()
        .any(|(t, p)| t == &tuple!["Bob"] && *p == rat!(7, 10)));
    println!("{}", prob_report.render());
    assert!(
        prob_report.bdd.is_some(),
        "pc-table reports carry BDD stats"
    );
    println!("EXPLAIN ANALYZE ✓");

    // ------------------------------------------------------------------
    // Serving: a long-lived `Server` answers many queries over the same
    // catalog through a shared LRU `PlanCache` — each distinct query
    // text is parsed/planned/optimized once, then every repeat is an
    // `Arc<Prepared>` clone. With metrics on, the per-request counters
    // land in the global `ipdb::obs` registry.
    // ------------------------------------------------------------------
    ipdb::obs::set_enabled(true);
    let server = Server::<Instance>::start(cat.clone(), ServerConfig::with_threads(2));
    let hot = [
        "pi[0,1](sigma[and(#0=#2, #1=#3)](Takes x Passed))",
        "pi[0](Takes)",
        "pi[0](sigma[#1='math'](Takes))",
    ];
    for round in 0..4 {
        for text in hot {
            let answer = server.query(text).expect("served answer");
            if round == 0 {
                println!("serve: {text} -> {answer}");
            }
        }
    }
    // A catalog install is just another request: readers swap to the new
    // snapshot atomically and the plan cache keeps serving.
    let version = server
        .install("Passed", instance![["Theo", "math"]])
        .expect("install");
    let after = server.query(hot[0]).expect("served answer");
    println!(
        "serve: after install (snapshot v{version}): {} -> {after}",
        hot[0]
    );

    let (hits, misses) = (server.cache().hits(), server.cache().misses());
    let snap = ipdb::obs::snapshot();
    println!(
        "plan cache: {hits} hits / {misses} misses ({:.0}% hit rate); \
         obs: serve.requests={} serve.cache.hits={} serve.snapshot.installs={}",
        100.0 * hits as f64 / (hits + misses) as f64,
        snap.get("serve.requests").unwrap_or(0),
        snap.get("serve.cache.hits").unwrap_or(0),
        snap.get("serve.snapshot.installs").unwrap_or(0),
    );
    assert_eq!(misses, 3, "one miss per distinct query text");
    assert!(hits >= 10, "every repeat is a cache hit");
    server.shutdown();
    println!("serving loop ✓");
}
