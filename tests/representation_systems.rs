//! The §3 comparisons between representation systems (expressiveness
//! claims and Mod-preserving conversions), plus the Prop. 1 non-closure
//! witnesses (E09).

use ipdb::prelude::*;
use ipdb::rel::instance;
use ipdb::tables::{OrSetValue, RBlock, RConstraint, RSets, RXorEquiv, RepresentationSystem};
use ipdb::theory::nonclosure;

/// §3: "finite-domain v-tables are strictly more expressive than finite
/// Codd tables. Indeed … the set of instances represented by the finite
/// v-table {(1,x),(x,1)} where dom(x) = {1,2} cannot be represented by
/// any finite Codd table."
#[test]
fn finite_vtables_strictly_beat_codd() {
    let x = Var(0);
    let mut v =
        CTable::v_table(2, [vec![t_const(1), t_var(x)], vec![t_var(x), t_const(1)]]).unwrap();
    v.set_domain(x, Domain::ints(1..=2)).unwrap();
    let target = v.mod_finite().unwrap();
    // Worlds: x=1 → {(1,1)}; x=2 → {(1,2),(2,1)}.
    assert_eq!(target.len(), 2);
    assert!(target.contains(&instance![[1, 1]]));
    assert!(target.contains(&instance![[1, 2], [2, 1]]));
    // The correlated worlds defeat any or-set table (= finite Codd
    // table): with independent cells, representing both worlds forces
    // spurious mixtures. Exhaustive check over candidate or-set tables
    // with ≤ 2 rows and cells drawn from {1,2}:
    let cells: Vec<OrSetValue> = vec![
        OrSetValue::single(1),
        OrSetValue::single(2),
        OrSetValue::new([1i64, 2]).unwrap(),
    ];
    let mut found = false;
    for r in 0..=2usize {
        // All r-row tables over 2 columns of the 3 candidate cells.
        let mut stack = vec![Vec::new()];
        for _ in 0..(2 * r) {
            let mut next = Vec::new();
            for partial in stack {
                for c in &cells {
                    let mut p = partial.clone();
                    p.push(c.clone());
                    next.push(p);
                }
            }
            stack = next;
        }
        for flat in stack {
            let rows: Vec<Vec<OrSetValue>> = flat.chunks(2).map(|ch| ch.to_vec()).collect();
            let t = OrSetTable::from_rows(2, rows).unwrap();
            if t.worlds().unwrap() == target {
                found = true;
            }
        }
    }
    assert!(!found, "no finite Codd/or-set table represents the v-table");
}

/// §3: "finite-domain v-tables are themselves finitely incomplete: the
/// i-database {{(1,2)},{(2,1)}} cannot be represented by any finite
/// v-table" — certified by the emptiness/cardinality structure: v-table
/// rows always instantiate, so a 1-row table gives 1-tuple worlds of the
/// form {ν(t)} … but the two target worlds force the row to be (x, y)
/// patterns that also produce e.g. (1,1). Exhaustive check over 1-row
/// finite v-tables on dom {1,2}.
#[test]
fn finite_vtables_are_finitely_incomplete() {
    let target = IDatabase::from_instances(2, [instance![[1, 2]], instance![[2, 1]]]).unwrap();
    // 1-row v-tables over terms {1, 2, x, y} with dom {1,2}: enumerate.
    let (x, y) = (Var(0), Var(1));
    let terms = [t_const(1), t_const(2), t_var(x), t_var(y)];
    let mut found = false;
    for a in &terms {
        for b in &terms {
            let mut t = CTable::v_table(2, [vec![a.clone(), b.clone()]]).unwrap();
            for v in t.vars() {
                t.set_domain(v, Domain::ints(1..=2)).unwrap();
            }
            if t.mod_finite().unwrap() == target {
                found = true;
            }
        }
    }
    assert!(!found);
    // Multi-row tables only add more tuples per world (rows always
    // instantiate), but target worlds have exactly one tuple, and rows
    // (x,y)(x,y) coincide only under equal valuations — 2 distinct rows
    // can coincide on SOME valuations but then other valuations give
    // 2-tuple worlds not in the target. The boolean c-table of Thm 3, of
    // course, represents it:
    let bc = ipdb::theory::finite_complete::theorem3_table(&target, &mut VarGen::new()).unwrap();
    assert_eq!(bc.worlds().unwrap(), target);
}

/// §3: or-set tables are strictly less expressive than R_sets ([29],
/// used in Thm 6.3's proof): the R_sets block {(1),(2)} with one choice
/// is not an or-set table's Mod... it is! ({〈1,2〉}). A real separator:
/// blocks of non-rectangular tuples.
#[test]
fn rsets_beat_orset_tables() {
    // One block: choose (1,1) or (2,2) — correlated columns.
    let t = RSets::from_blocks(
        2,
        [RBlock::new([tuple![1, 1], tuple![2, 2]], false).unwrap()],
    )
    .unwrap();
    let target = t.worlds().unwrap();
    assert_eq!(target.len(), 2);
    // Any 1-row or-set table with cells ⊆ {1,2} either fixes a column or
    // mixes (1,2)/(2,1) in. Exhaustive check:
    let cells: Vec<OrSetValue> = vec![
        OrSetValue::single(1),
        OrSetValue::single(2),
        OrSetValue::new([1i64, 2]).unwrap(),
    ];
    for a in &cells {
        for b in &cells {
            let cand = OrSetTable::from_rows(2, [vec![a.clone(), b.clone()]]).unwrap();
            assert_ne!(cand.worlds().unwrap(), target);
        }
    }
}

/// All weaker systems embed into c-tables with the same Mod (the
/// yardstick claim of §3): spot-check one instance of each.
#[test]
fn all_embeddings_preserve_mod() {
    let mut gen = VarGen::new();

    let q = QTable::from_rows(1, [(tuple![1], false), (tuple![2], true)]).unwrap();
    assert_eq!(
        q.to_ctable(&mut gen).unwrap().mod_finite().unwrap(),
        q.worlds().unwrap()
    );

    let o = OrSetTable::from_rows(
        1,
        [
            vec![OrSetValue::new([1i64, 2]).unwrap()],
            vec![OrSetValue::single(3)],
        ],
    )
    .unwrap();
    assert_eq!(
        o.to_ctable(&mut gen).unwrap().mod_finite().unwrap(),
        o.worlds().unwrap()
    );

    let r = RSets::from_blocks(
        1,
        [
            RBlock::new([tuple![1], tuple![2]], false).unwrap(),
            RBlock::new([tuple![3]], true).unwrap(),
        ],
    )
    .unwrap();
    assert_eq!(
        r.to_ctable(&mut gen).unwrap().mod_finite().unwrap(),
        r.worlds().unwrap()
    );

    let xr = RXorEquiv::new(
        1,
        vec![tuple![1], tuple![2], tuple![3]],
        vec![RConstraint::Xor(0, 1), RConstraint::Equiv(1, 2)],
    )
    .unwrap();
    assert_eq!(
        xr.to_ctable(&mut gen).unwrap().mod_finite().unwrap(),
        xr.worlds().unwrap()
    );

    let ra = ipdb::tables::RAProp::new(
        1,
        vec![
            vec![OrSetValue::new([1i64, 2]).unwrap()],
            vec![OrSetValue::single(3)],
        ],
        Condition::or([Condition::bvar(Var(0)), Condition::bvar(Var(1))]),
    )
    .unwrap();
    assert_eq!(
        ra.to_ctable(&mut gen).unwrap().mod_finite().unwrap(),
        ra.worlds().unwrap()
    );
}

/// E09 — Prop. 1: the selection witness escapes every unconditional-row
/// system; the join witness escapes ?-tables, R_sets, and (bounded
/// search) R⊕≡.
#[test]
fn e09_nonclosure_witnesses() {
    let sel = nonclosure::selection_witness().unwrap();
    assert!(nonclosure::unrepresentable_by_unconditional_tables(
        &sel.target
    ));

    let join = nonclosure::qtable_join_witness().unwrap();
    assert!(nonclosure::qtable_representing(&join.target).is_none());
    assert!(nonclosure::rsets_unrepresentable_via_singletons(
        &join.target
    ));
    // ... but the *source* of each witness is representable in its own
    // system, so these really are closure failures, not vacuities.
    assert!(nonclosure::qtable_representing(&join.source_worlds).is_some());
}

/// E09 (R⊕≡, bounded search — the expensive certificate).
#[test]
fn e09_rxor_join_witness_bounded() {
    let w = nonclosure::rxor_join_witness(4).unwrap();
    assert_eq!(w.system, "R_⊕≡ (join)");
}
