//! Cross-crate theorem pipelines (E05–E12, E16–E17): randomized
//! end-to-end checks that chain several constructions together.

use proptest::prelude::*;

use ipdb::prelude::*;
use ipdb::rel::strategies::{arb_idb, arb_query};
use ipdb::rel::Fragment;
use ipdb::tables::strategies::arb_ctable;
use ipdb::tables::RepresentationSystem;
use ipdb::theory::{completion, finite_complete, ra_complete};

/// Non-empty random finite i-databases (every representation has ≥ 1
/// world).
fn arb_target() -> impl Strategy<Value = IDatabase> {
    arb_idb(2, 3, 2, 2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// E05 — Thms 1+2 round trip: T → q (Thm 1) → q̄(Z_k) (Thm 2) ≡ T.
    #[test]
    fn e05_ra_completeness_round_trip(t in arb_ctable(1, 2, 2, 1)) {
        let (q, k) = ra_complete::theorem1_query(&t).unwrap();
        prop_assert!(Fragment::SPJU.admits_query(&q, k).unwrap());
        let mut gen = VarGen::avoiding(t.vars());
        let back = ra_complete::theorem2_table(&q, k, &mut gen).unwrap();
        prop_assert!(back.equivalent_to(&t).unwrap());
    }

    /// E06 — Thm 3: random finite target → boolean c-table → Mod equals
    /// target.
    #[test]
    fn e06_theorem3_round_trip(target in arb_target()) {
        let t = finite_complete::theorem3_table(&target, &mut VarGen::new()).unwrap();
        prop_assert_eq!(t.worlds().unwrap(), target);
    }

    /// E10 — Thm 5: both RA-completion constructions represent the input
    /// c-table within their fragments.
    #[test]
    fn e10_ra_completion(t in arb_ctable(1, 2, 2, 1)) {
        let mut gen = VarGen::avoiding(t.vars());
        let (codd, q1) = completion::ra_completion_codd_spju(&t, &mut gen).unwrap();
        prop_assert!(codd.is_codd());
        prop_assert!(Fragment::SPJU.admits_query(&q1, codd.arity()).unwrap());
        prop_assert!(codd.eval_query(&q1).unwrap().equivalent_to(&t).unwrap());

        let (vt, q2) = completion::ra_completion_vtable_sp(&t).unwrap();
        prop_assert!(vt.is_v_table());
        prop_assert!(Fragment::SP.admits_query(&q2, vt.arity()).unwrap());
        prop_assert!(vt.eval_query(&q2).unwrap().equivalent_to(&t).unwrap());
    }

    /// E11 — Thm 6: all four finite-completion constructions hit the
    /// target inside their fragments.
    #[test]
    fn e11_finite_completion_all_systems(target in arb_target()) {
        // 6.1 or-set + PJ.
        let (s, t, q) = completion::finite_completion_orset_pj(&target).unwrap();
        prop_assert!(Fragment::PJ.admits(q.op_set()));
        let img = completion::image_of_pair(&q, &s.worlds().unwrap(), &t.worlds().unwrap())
            .unwrap();
        prop_assert_eq!(img, target.clone());

        // 6.2 finite v-tables + PJ and + S⁺P.
        let mut gen = VarGen::new();
        let (s, t, q) = completion::finite_completion_finitev_pj(&target, &mut gen).unwrap();
        let img = completion::image_of_pair(
            &q,
            &s.mod_finite().unwrap(),
            &t.mod_finite().unwrap(),
        )
        .unwrap();
        prop_assert_eq!(img, target.clone());

        let (s, q) = completion::finite_completion_finitev_sp(&target, &mut gen).unwrap();
        prop_assert!(Fragment::S_PLUS_P.admits_query(&q, s.arity()).unwrap());
        prop_assert_eq!(q.eval_idb(&s.mod_finite().unwrap()).unwrap(), target.clone());

        // 6.3 R_sets + PJ and + PU.
        let (s, t, q) = completion::finite_completion_rsets_pj(&target).unwrap();
        prop_assert!(Fragment::PJ.admits(q.op_set()));
        let img = completion::image_of_pair(&q, &s.worlds().unwrap(), &t.worlds().unwrap())
            .unwrap();
        prop_assert_eq!(img, target.clone());

        let (s, q) = completion::finite_completion_rsets_pu(&target).unwrap();
        prop_assert!(Fragment::PU.admits(q.op_set()));
        prop_assert_eq!(q.eval_idb(&s.worlds().unwrap()).unwrap(), target.clone());
    }

    /// E11 — Thm 6.4: R⊕≡ + S⁺PJ (kept to small targets: world
    /// enumeration is exponential in the duplicated-tuple count).
    #[test]
    fn e11_finite_completion_rxor(target in arb_idb(1, 2, 2, 1)) {
        let (t, s, q) = completion::finite_completion_rxor_spj_pair(&target).unwrap();
        prop_assert!(Fragment::S_PLUS_PJ.admits(q.op_set()));
        let img = completion::image_of_pair(&q, &t.worlds().unwrap(), &s.worlds().unwrap())
            .unwrap();
        prop_assert_eq!(img, target);
    }

    /// E12 — Thm 7 + Cor. 1: ?-tables closed under RA are finitely
    /// complete.
    #[test]
    fn e12_general_completion(target in arb_target()) {
        let (host, q) = completion::corollary1_qtable(&target).unwrap();
        prop_assert_eq!(q.eval_idb(&host.worlds().unwrap()).unwrap(), target);
    }

    /// E08 — Thm 4 through the façade: Mod(q̄(T)) = q(Mod(T)) with
    /// finite domains.
    #[test]
    fn e08_closure(
        t in ipdb::tables::strategies::arb_finite_ctable(2, 3, 2, 1),
        q in arb_query(2, 2, 2, 1)
    ) {
        let lhs = t.eval_query(&q).unwrap().mod_finite().unwrap();
        let rhs = q.eval_idb(&t.mod_finite().unwrap()).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    /// Chained pipeline: Thm 3 → Thm 4 → Thm 3 — querying a
    /// finitely-complete representation and re-representing the answer.
    #[test]
    fn pipeline_thm3_query_thm3(
        target in arb_target(),
        q in arb_query(2, 2, 2, 1)
    ) {
        let mut gen = VarGen::new();
        let table = finite_complete::theorem3_table(&target, &mut gen).unwrap();
        let answered = table.as_ctable().eval_query(&q).unwrap();
        let answer_worlds = answered.mod_finite().unwrap();
        prop_assert_eq!(answer_worlds.clone(), q.eval_idb(&target).unwrap());
        // Round-trip the answer through Thm 3 again.
        let again = finite_complete::theorem3_table(&answer_worlds, &mut gen).unwrap();
        prop_assert_eq!(again.worlds().unwrap(), answer_worlds);
    }
}

/// E07 — Example 5 series (small sizes; the benches sweep further).
#[test]
fn e07_example5_blowup() {
    for (m, n) in [(2usize, 2i64), (2, 3), (3, 2)] {
        let mut gen = VarGen::new();
        let finite = finite_complete::example5_finite_ctable(m, n, &mut gen);
        let boolean = finite_complete::example5_boolean_equivalent(m, n, &mut gen).unwrap();
        let cells_finite = finite.len() * finite.arity();
        let expected_rows = (n as usize).pow(m as u32);
        assert_eq!(boolean.len(), expected_rows, "m={m} n={n}");
        assert!(cells_finite < expected_rows || m * (n as usize) <= 4);
        assert_eq!(
            boolean.worlds().unwrap(),
            finite.mod_finite().unwrap(),
            "m={m} n={n}"
        );
    }
}
