//! Failure-injection tests: every layer reports malformed input with a
//! typed error instead of panicking or silently mis-answering.

use ipdb::prelude::*;
use ipdb::prob::FiniteSpace;
use ipdb::rel::{Query, RelError};
use ipdb::tables::TableError;

#[test]
fn rel_arity_errors_surface() {
    // Union of mismatched arities.
    let q = Query::union(Query::Input, Query::singleton([1i64, 2]));
    assert!(matches!(
        q.arity(1),
        Err(RelError::ArityMismatch {
            expected: 1,
            got: 2
        })
    ));
    // Out-of-range projection.
    let q = Query::project(Query::Input, vec![5]);
    assert!(matches!(
        q.eval(&ipdb::rel::instance![[1, 2]]),
        Err(RelError::ColumnOutOfRange { col: 5, .. })
    ));
}

#[test]
fn second_input_requires_two_relation_context() {
    let q = Query::product(Query::Input, Query::Second);
    assert!(matches!(
        q.eval(&ipdb::rel::instance![[1]]),
        Err(RelError::NoSecondInput)
    ));
    // But eval2 accepts it.
    let out = q
        .eval2(&ipdb::rel::instance![[1]], &ipdb::rel::instance![[2]])
        .unwrap();
    assert_eq!(out, ipdb::rel::instance![[1, 2]]);
}

#[test]
fn ctable_algebra_errors_surface() {
    let x = Var(0);
    let t = CTable::builder(1)
        .row([t_var(x)], Condition::True)
        .build()
        .unwrap();
    // Arity mismatch in union.
    let t2 = CTable::new(2, vec![]).unwrap();
    assert!(matches!(
        t.union_bar(&t2),
        Err(TableError::Rel(RelError::ArityMismatch { .. }))
    ));
    // Second input rejected by the single-table algebra.
    assert!(matches!(
        t.eval_query(&Query::Second),
        Err(TableError::Rel(RelError::NoSecondInput))
    ));
    // Mod of a table with an unrestricted variable is infinite.
    assert!(matches!(t.mod_finite(), Err(TableError::MissingDomain(_))));
}

#[test]
fn join_errors_surface() {
    use ipdb::engine::{Engine, EngineError, PlanNode};

    // A join key column past the combined arity fails at plan build with
    // the dedicated JoinArity error...
    let oob = Query::join(Query::Input, Query::Input, [(0, 9)], None);
    assert_eq!(
        Engine::new().prepare(&oob, 2).unwrap_err(),
        EngineError::JoinArity {
            col: 9,
            left: 2,
            right: 2
        }
    );
    // ...and at rel-level evaluation with a ColumnOutOfRange.
    assert!(matches!(
        oob.eval(&ipdb::rel::instance![[1, 2]]),
        Err(RelError::ColumnOutOfRange { col: 9, arity: 4 })
    ));
    // Key pairs that do not span the two operands are rejected: the plan
    // layer insists a Join can actually hash on its keys.
    let one_sided = Query::join(Query::Input, Query::Input, [(0, 1)], None);
    assert_eq!(
        Engine::new().prepare(&one_sided, 2).unwrap_err(),
        EngineError::JoinArity {
            col: 1,
            left: 2,
            right: 2
        }
    );
    // An empty `on` list is rejected at plan build (write sigma(... x ...)).
    let empty = Query::join(Query::Input, Query::Input, [], None);
    assert_eq!(
        Engine::new().prepare(&empty, 2).unwrap_err(),
        EngineError::EmptyJoinOn
    );
    // The same errors surface through the surface syntax.
    assert_eq!(
        Engine::new().prepare_text("join[](V, V)", 2).unwrap_err(),
        EngineError::EmptyJoinOn
    );
    // Duplicate (and reversed) key pairs are deduplicated at plan build.
    let dup = Query::join(Query::Input, Query::Input, [(0, 2), (2, 0), (0, 2)], None);
    let stmt = Engine { optimize: false }.prepare(&dup, 2).unwrap();
    match &stmt.plan().node {
        PlanNode::Join { on, .. } => assert_eq!(on, &vec![(0, 2)]),
        other => panic!("expected a Join plan node, got {other:?}"),
    }
    // A residual referencing a column outside the combined tuple.
    let bad_resid = Query::join(
        Query::Input,
        Query::Input,
        [(0, 2)],
        Some(Pred::eq_cols(0, 8)),
    );
    assert!(matches!(
        Engine::new().prepare(&bad_resid, 2),
        Err(EngineError::Rel(RelError::ColumnOutOfRange { col: 8, .. }))
    ));
    // The c-table algebra reports bad keys through TableError.
    let x = Var(0);
    let t = CTable::builder(1)
        .row([t_var(x)], Condition::True)
        .build()
        .unwrap();
    assert!(matches!(
        t.join_bar(&t, &[(0, 5)], None),
        Err(TableError::Rel(RelError::ColumnOutOfRange { col: 5, .. }))
    ));
}

#[test]
fn prob_validation_errors_surface() {
    use ipdb::prob::ProbError;
    // Mass ≠ 1.
    assert!(matches!(
        FiniteSpace::<i32, Rat>::new([(1, Rat::new(1, 2))]),
        Err(ProbError::MassNotOne(_))
    ));
    // Probability out of range in a p-?-table.
    let mut t: PTable<Rat> = PTable::new(1);
    assert!(matches!(
        t.push(tuple![1], Rat::new(3, 2)),
        Err(ProbError::InvalidProbability(_))
    ));
    // Missing variable distribution in a pc-table.
    let x = Var(0);
    let ct = CTable::builder(1)
        .row([t_var(x)], Condition::True)
        .build()
        .unwrap();
    assert_eq!(
        PcTable::<Rat>::new(ct, []).unwrap_err(),
        ProbError::MissingDistribution(x)
    );
}

#[test]
fn provenance_difference_rejected() {
    use ipdb::provenance::{BoolSr, KRelation, ProvError};
    let r: KRelation<BoolSr> = KRelation::new(1);
    let q = Query::diff(Query::Input, Query::Input);
    assert_eq!(
        ipdb::provenance::eval(&q, &r).unwrap_err(),
        ProvError::DifferenceNotSupported
    );
}

#[test]
fn theory_layer_errors_surface() {
    use ipdb::theory::{completion, finite_complete, CoreError};
    // Empty targets are unrepresentable everywhere.
    let empty = IDatabase::empty(1);
    assert!(matches!(
        finite_complete::theorem3_table(&empty, &mut VarGen::new()),
        Err(CoreError::Unrepresentable(_))
    ));
    assert!(matches!(
        completion::corollary1_qtable(&empty),
        Err(CoreError::Unrepresentable(_))
    ));
    // Thm 7 demands a big-enough host.
    let target =
        IDatabase::from_instances(1, [ipdb::rel::instance![[1]], ipdb::rel::instance![[2]]])
            .unwrap();
    let host = IDatabase::single(ipdb::rel::instance![[9]]);
    assert!(matches!(
        completion::theorem7_query(&host, &target),
        Err(CoreError::HostTooSmall {
            needed: 2,
            available: 1
        })
    ));
}

#[test]
fn unsatisfiable_rxor_embedding_is_reported() {
    use ipdb::tables::{RConstraint, RXorEquiv, RepresentationSystem};
    let t = RXorEquiv::new(1, vec![tuple![1]], vec![RConstraint::Xor(0, 0)]).unwrap();
    assert!(matches!(
        t.to_ctable(&mut VarGen::new()),
        Err(TableError::Unrepresentable(_))
    ));
}
