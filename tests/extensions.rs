//! Integration tests for the §9 future-work extensions: global-condition
//! c-tables, chain (conditionally dependent) pc-tables, and possibilistic
//! c-tables — each checked for its own closure property against the
//! worldwise image, on random inputs.

use proptest::prelude::*;

use ipdb::prelude::*;
use ipdb::prob::chain::{ChainPcTable, CondDist};
use ipdb::prob::possibilistic::{PossCTable, PossDist, FULLY};
use ipdb::prob::FiniteSpace;
use ipdb::rel::strategies::arb_query;
use ipdb::tables::strategies::arb_finite_ctable;
use ipdb::tables::GlobalCTable;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Global c-tables: `q̄` commutes with `Mod` (the global rides
    /// along; Lemma 1 extends to the filtered valuation set).
    #[test]
    fn global_ctable_closure(
        t in arb_finite_ctable(2, 3, 2, 1),
        q in arb_query(2, 2, 2, 1),
        which in 0u8..3
    ) {
        let vars: Vec<Var> = t.vars().into_iter().collect();
        let global = match (which, vars.as_slice()) {
            (_, []) => Condition::True,
            (0, [v, ..]) => Condition::neq_vc(*v, 0),
            (1, [v, rest @ ..]) => match rest.first() {
                Some(w) => Condition::eq_vv(*v, *w),
                None => Condition::eq_vc(*v, 1),
            },
            (_, [v, ..]) => Condition::or([
                Condition::eq_vc(*v, 0),
                Condition::eq_vc(*v, 1),
            ]),
        };
        let g = GlobalCTable::new(t, global);
        let slice = Domain::ints(0..=1);
        let answered = g.eval_query(&q).unwrap();
        let lhs = answered.mod_over(&slice).unwrap();
        let rhs = q.eval_idb(&g.mod_over(&slice).unwrap()).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    /// Chain pc-tables: closure under queries (distribution equality
    /// with exact rationals).
    #[test]
    fn chain_pctable_closure(q in arb_query(2, 2, 2, 1)) {
        let chain = correlated_chain();
        let lhs = chain.eval_query(&q).unwrap().mod_space().unwrap();
        let rhs = chain.mod_space().unwrap().map_query(&q).unwrap();
        prop_assert!(lhs.same_distribution(&rhs));
    }

    /// Possibilistic c-tables: (max, min) closure against the max-image.
    #[test]
    fn possibilistic_closure(q in arb_query(1, 1, 2, 1)) {
        let t = sample_poss();
        let lhs = t.eval_query(&q).unwrap().mod_space().unwrap();
        let rhs = t.mod_space().unwrap().map_query(&q).unwrap();
        prop_assert_eq!(lhs, rhs);
    }
}

/// A two-variable chain: x marginal; y's distribution depends on x.
fn correlated_chain() -> ChainPcTable<Rat> {
    let (x, y) = (Var(0), Var(1));
    let table = CTable::builder(2)
        .row([t_var(x), t_var(y)], Condition::True)
        .row([t_const(0), t_var(x)], Condition::neq_vv(x, y))
        .build()
        .unwrap();
    let dist = |pairs: &[(i64, Rat)]| {
        FiniteSpace::new(pairs.iter().map(|(v, p)| (Value::from(*v), *p))).unwrap()
    };
    let x_dist = CondDist::marginal(dist(&[(0, Rat::new(1, 2)), (1, Rat::new(1, 2))]));
    let y_dist = CondDist::conditional(
        vec![x],
        [
            (
                vec![Value::from(0)],
                dist(&[(0, Rat::new(3, 4)), (1, Rat::new(1, 4))]),
            ),
            (
                vec![Value::from(1)],
                dist(&[(0, Rat::new(1, 4)), (1, Rat::new(3, 4))]),
            ),
        ],
    );
    ChainPcTable::new(table, vec![x, y], [(x, x_dist), (y, y_dist)]).unwrap()
}

fn sample_poss() -> PossCTable {
    let x = Var(0);
    let table = CTable::builder(1)
        .row([t_var(x)], Condition::True)
        .row([t_const(1)], Condition::neq_vc(x, 1))
        .build()
        .unwrap();
    let d = PossDist::new([(Value::from(0), FULLY), (Value::from(1), 700)]).unwrap();
    PossCTable::new(table, [(x, d)]).unwrap()
}

/// Global conditions strictly extend c-tables: `Mod = ∅` is expressible.
#[test]
fn global_conditions_add_power() {
    let x = Var(0);
    let t = CTable::builder(1)
        .row([t_var(x)], Condition::True)
        .domain(x, Domain::ints(1..=2))
        .build()
        .unwrap();
    let g = GlobalCTable::new(t.clone(), Condition::False);
    assert!(g.mod_over(&Domain::empty()).unwrap().is_empty());
    // No plain c-table has an empty Mod: its simulation differs by {∅}.
    let sim = g.to_ctable().mod_finite().unwrap();
    assert_eq!(sim.len(), 1);
    assert!(sim.contains(&ipdb::rel::Instance::empty(1)));
}

/// The chain marginal on the dependent variable matches the hand
/// computation (law of total probability).
#[test]
fn chain_total_probability() {
    let chain = correlated_chain();
    let m = chain.mod_space().unwrap();
    // P[y=0] = 1/2·3/4 + 1/2·1/4 = 1/2; world (x,y)=(0,0) has the
    // second row suppressed (x=y): world {(0,0)} with mass 3/8.
    assert_eq!(m.world_prob(&ipdb::rel::instance![[0, 0]]), Rat::new(3, 8));
    // (x,y)=(0,1): both rows: {(0,1),(0,0)} at 1/2·1/4.
    assert_eq!(
        m.world_prob(&ipdb::rel::instance![[0, 1], [0, 0]]),
        Rat::new(1, 8)
    );
    assert_eq!(m.space().total_mass(), Rat::ONE);
}

/// Possibility/necessity duality on the sample table.
#[test]
fn possibilistic_duality() {
    let t = sample_poss();
    let m = t.mod_space().unwrap();
    // Worlds: x=0 → {0, 1} at 1000; x=1 → {1} at 700.
    assert_eq!(m.world_degree(&ipdb::rel::instance![[0], [1]]), FULLY);
    assert_eq!(m.world_degree(&ipdb::rel::instance![[1]]), 700);
    assert!(m.is_normalized());
    // (1) is in both worlds: fully possible AND fully necessary.
    assert_eq!(m.tuple_degree(&tuple![1]), FULLY);
    assert_eq!(m.tuple_necessity(&tuple![1]), FULLY);
    // (0) is possible at 1000 but necessary only at 1000-700 = 300.
    assert_eq!(m.tuple_degree(&tuple![0]), FULLY);
    assert_eq!(m.tuple_necessity(&tuple![0]), 300);
}

/// Certain answers through the façade (core::answers).
#[test]
fn certain_answers_end_to_end() {
    let (x, y) = (Var(0), Var(1));
    let t = CTable::builder(2)
        .row([t_const("fixed"), t_const("row")], Condition::True)
        .row([t_var(x), t_var(y)], Condition::True)
        .build()
        .unwrap();
    let q = ipdb::rel::Query::Input;
    let certain = ipdb::theory::answers::certain_answers(&t, &q).unwrap();
    assert_eq!(certain, ipdb::rel::instance![["fixed", "row"]]);
}
