//! End-to-end reproductions of the paper's worked examples (E01–E04,
//! E13, E14, E18 of the experiment index in DESIGN.md).

use ipdb::prelude::*;
use ipdb::prob::FiniteSpace;
use ipdb::rel::{instance, Query};
use ipdb::tables::{OrSetQTable, OrSetValue, RepresentationSystem};

fn os(vals: &[i64]) -> OrSetValue {
    OrSetValue::new(vals.iter().copied()).unwrap()
}

/// E01 — Example 1: the v-table R and its listed worlds.
#[test]
fn e01_example1_vtable() {
    let (x, y, z) = (Var(0), Var(1), Var(2));
    let r = CTable::v_table(
        3,
        [
            vec![t_const(1), t_const(2), t_var(x)],
            vec![t_const(3), t_var(x), t_var(y)],
            vec![t_var(z), t_const(4), t_const(5)],
        ],
    )
    .unwrap();
    let slice = Domain::new([1i64, 2, 77, 89, 97]);
    let worlds = r.mod_over(&slice).unwrap();
    // The four instances the paper displays:
    for w in [
        instance![[1, 2, 1], [3, 1, 1], [1, 4, 5]],
        instance![[1, 2, 2], [3, 2, 1], [1, 4, 5]],
        instance![[1, 2, 1], [3, 1, 2], [1, 4, 5]],
        instance![[1, 2, 77], [3, 77, 89], [97, 4, 5]],
    ] {
        assert!(worlds.contains(&w), "missing paper world {w}");
    }
    // v-tables never drop rows: every world has ≤ 3 tuples and the
    // constant projections hold.
    for w in worlds.iter() {
        assert!(w.len() <= 3);
    }
}

/// E02 — Example 2: the c-table S; conditions prune rows.
#[test]
fn e02_example2_ctable() {
    let (x, y, z) = (Var(0), Var(1), Var(2));
    let s = CTable::builder(3)
        .row([t_const(1), t_const(2), t_var(x)], Condition::True)
        .row(
            [t_const(3), t_var(x), t_var(y)],
            Condition::and([Condition::eq_vv(x, y), Condition::neq_vc(z, 2)]),
        )
        .row(
            [t_var(z), t_const(4), t_const(5)],
            Condition::or([Condition::neq_vc(x, 1), Condition::neq_vv(x, y)]),
        )
        .build()
        .unwrap();
    let slice = Domain::new([1i64, 2, 77, 97]);
    let worlds = s.mod_over(&slice).unwrap();
    // Paper-listed members of Mod(S):
    for w in [
        instance![[1, 2, 1], [3, 1, 1]],
        instance![[1, 2, 2], [1, 4, 5]],
        instance![[1, 2, 77], [97, 4, 5]],
    ] {
        assert!(worlds.contains(&w), "missing paper world {w}");
    }
    // Rows 2 and 3 are mutually exclusive under x=y ∧ x=1: no world has
    // both (3,1,1) and (1,4,5) with z=1... spot-check the semantics by
    // brute force instead: every world is ν(S) for some ν.
    for world in worlds.iter() {
        assert!(world.len() <= 3 && !world.is_empty());
    }
}

/// E03 — Example 3: the or-set-?-table T and its 2·4·3 = 24 choice
/// combinations (fewer distinct worlds after dedup).
#[test]
fn e03_example3_orset_qtable() {
    let t = OrSetQTable::from_rows(
        3,
        [
            (vec![os(&[1]), os(&[2]), os(&[1, 2])], false),
            (vec![os(&[3]), os(&[1, 2]), os(&[3, 4])], false),
            (vec![os(&[4, 5]), os(&[4]), os(&[5])], true),
        ],
    )
    .unwrap();
    let worlds = t.worlds().unwrap();
    for w in [
        instance![[1, 2, 1], [3, 1, 3], [4, 4, 5]],
        instance![[1, 2, 1], [3, 1, 3]],
        instance![[1, 2, 2], [3, 1, 3], [4, 4, 5]],
        instance![[1, 2, 2], [3, 2, 4]],
    ] {
        assert!(worlds.contains(&w), "missing paper world {w}");
    }
    // 2 choices × 4 choices × (2 or-set choices + absent) → ≤ 24
    // combinations; all worlds have 2 or 3 tuples.
    assert!(worlds.len() <= 24);
    // Its c-table embedding has the same Mod (§3's equivalence).
    let mut gen = VarGen::new();
    let c = t.to_ctable(&mut gen).unwrap();
    assert_eq!(c.mod_finite().unwrap(), worlds);
}

/// E04 — Example 4 / Thm 1: the paper's verbatim query defines
/// Example 2's table from Z₃, and our generic Thm 1 construction agrees
/// with it.
#[test]
fn e04_example4_ra_definability() {
    let (x, y, z) = (Var(0), Var(1), Var(2));
    let s = CTable::builder(3)
        .row([t_const(1), t_const(2), t_var(x)], Condition::True)
        .row(
            [t_const(3), t_var(x), t_var(y)],
            Condition::and([Condition::eq_vv(x, y), Condition::neq_vc(z, 2)]),
        )
        .row(
            [t_var(z), t_const(4), t_const(5)],
            Condition::or([Condition::neq_vc(x, 1), Condition::neq_vv(x, y)]),
        )
        .build()
        .unwrap();
    let verbatim = ipdb::theory::ra_complete::example4_query();
    let (generic, k) = ipdb::theory::ra_complete::theorem1_query(&s).unwrap();
    assert_eq!(k, 3);
    for slice in [Domain::ints(1..=3), Domain::new([1i64, 2, 5, 42, 77])] {
        let z_worlds = IDatabase::z_k_over(&slice, 3);
        let mod_s = s.mod_over(&slice).unwrap();
        assert_eq!(verbatim.eval_idb(&z_worlds).unwrap(), mod_s);
        assert_eq!(generic.eval_idb(&z_worlds).unwrap(), mod_s);
    }
}

/// E13 — Prop. 4: q(N) = Z_n over finite slices of the zero-information
/// database.
#[test]
fn e13_prop4_zero_information() {
    for n in [1usize, 2] {
        let t = Tuple::new(vec![1i64; n]);
        let q = ipdb::theory::ra_complete::prop4_query(n, &t).unwrap();
        let dom = Domain::ints(1..=2);
        let n_slice = IDatabase::all_instances_over(&dom, n, 2);
        assert_eq!(
            q.eval_idb(&n_slice).unwrap(),
            IDatabase::z_k_over(&dom, n),
            "arity {n}"
        );
    }
}

/// E14 — Example 6: the p-or-set-table S and p-?-table T with their
/// hand-computed probabilities.
#[test]
fn e14_example6_probabilistic_tables() {
    // T: (1,2):0.4, (3,4):0.3, (5,6):1.0 — independent tuples.
    let t = PTable::from_rows(
        2,
        [
            (tuple![1, 2], Rat::new(4, 10)),
            (tuple![3, 4], Rat::new(3, 10)),
            (tuple![5, 6], Rat::ONE),
        ],
    )
    .unwrap();
    let mt = t.mod_space().unwrap();
    assert_eq!(
        mt.world_prob(&instance![[1, 2], [5, 6]]),
        Rat::new(4, 10) * Rat::new(7, 10)
    );
    assert_eq!(mt.tuple_prob(&tuple![5, 6]), Rat::ONE);

    // S: row1 = (1, 〈2:.3, 3:.7〉), row2 = (4,5), row3 = (〈6:.5,7:.5〉,
    // 〈8:.1,9:.9〉).
    let cell = |pairs: &[(i64, Rat)]| {
        FiniteSpace::new(pairs.iter().map(|(v, p)| (Value::from(*v), *p))).unwrap()
    };
    let s = POrSetTable::from_rows(
        2,
        [
            vec![
                FiniteSpace::dirac(Value::from(1)),
                cell(&[(2, Rat::new(3, 10)), (3, Rat::new(7, 10))]),
            ],
            vec![
                FiniteSpace::dirac(Value::from(4)),
                FiniteSpace::dirac(Value::from(5)),
            ],
            vec![
                cell(&[(6, Rat::new(1, 2)), (7, Rat::new(1, 2))]),
                cell(&[(8, Rat::new(1, 10)), (9, Rat::new(9, 10))]),
            ],
        ],
    )
    .unwrap();
    let ms = s.mod_space().unwrap();
    assert_eq!(ms.len(), 8);
    assert_eq!(
        ms.world_prob(&instance![[1, 3], [4, 5], [7, 9]]),
        Rat::new(7, 10) * Rat::new(1, 2) * Rat::new(9, 10)
    );

    // Both are pc-tables in disguise (§8): embeddings preserve the
    // distribution.
    let mut gen = VarGen::new();
    assert!(t
        .to_pctable(&mut gen)
        .unwrap()
        .mod_space()
        .unwrap()
        .same_distribution(&mt));
    assert!(s
        .to_pctable(&mut gen)
        .unwrap()
        .mod_space()
        .unwrap()
        .same_distribution(&ms));
}

/// E18 — the §1 running example: worlds and a query, end to end.
#[test]
fn e18_running_example_course_enrollment() {
    let mut gen = VarGen::new();
    let x = gen.fresh();
    let t = gen.fresh();
    let table = CTable::builder(2)
        .row([t_const("Alice"), t_var(x)], Condition::True)
        .row(
            [t_const("Bob"), t_var(x)],
            Condition::or([Condition::eq_vc(x, "phys"), Condition::eq_vc(x, "chem")]),
        )
        .row([t_const("Theo"), t_const("math")], Condition::eq_vc(t, 1))
        .build()
        .unwrap();
    let pc = PcTable::new(
        table,
        [
            (
                x,
                FiniteSpace::new([
                    (Value::from("math"), Rat::new(3, 10)),
                    (Value::from("phys"), Rat::new(3, 10)),
                    (Value::from("chem"), Rat::new(4, 10)),
                ])
                .unwrap(),
            ),
            (
                t,
                FiniteSpace::new([
                    (Value::from(0), Rat::new(15, 100)),
                    (Value::from(1), Rat::new(85, 100)),
                ])
                .unwrap(),
            ),
        ],
    )
    .unwrap();
    let worlds = pc.mod_space().unwrap();
    // 3 courses × 2 Theo states = 6 worlds, all distinct.
    assert_eq!(worlds.len(), 6);
    assert_eq!(
        worlds.world_prob(&instance![
            ["Alice", "chem"],
            ["Bob", "chem"],
            ["Theo", "math"]
        ]),
        Rat::new(4, 10) * Rat::new(85, 100)
    );
    assert_eq!(worlds.tuple_prob(&tuple!["Bob", "phys"]), Rat::new(3, 10));
    // Closure: asking "who takes math?" through q̄ matches the image
    // space (Thm 9).
    let q = Query::select(Query::Input, Pred::eq_const(1, "math"));
    let via_algebra = pc.eval_query(&q).unwrap().mod_space().unwrap();
    let via_image = worlds.map_query(&q).unwrap();
    assert!(via_algebra.same_distribution(&via_image));
    assert_eq!(
        via_algebra.tuple_prob(&tuple!["Theo", "math"]),
        Rat::new(85, 100)
    );
}
